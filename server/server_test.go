package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"gaussrange"
	"gaussrange/client"
	"gaussrange/internal/data"
	"gaussrange/server"
)

// paperStrategies are the six filter combinations evaluated in the paper.
var paperStrategies = []string{"RR", "BF", "RR+BF", "RR+OR", "BF+OR", "ALL"}

func testDB(t *testing.T, opts ...gaussrange.Option) *gaussrange.DB {
	t.Helper()
	pts, err := data.Clustered(1, 2000, 2, 20, 1000, 10)
	if err != nil {
		t.Fatalf("generating points: %v", err)
	}
	raw := make([][]float64, len(pts))
	for i, p := range pts {
		raw[i] = p
	}
	db, err := gaussrange.Load(raw, opts...)
	if err != nil {
		t.Fatalf("loading db: %v", err)
	}
	return db
}

func testSpec(db *gaussrange.DB, strategy string) gaussrange.QuerySpec {
	center, _ := db.Point(0)
	return gaussrange.QuerySpec{
		Center:   center,
		Cov:      [][]float64{{70, 34.6}, {34.6, 30}},
		Delta:    25,
		Theta:    0.01,
		Strategy: strategy,
	}
}

func newTestServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server, *client.Client) {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, client.New(ts.URL)
}

// TestServerMatchesDirectQuery proves the network layer is transparent: for
// all six paper strategies the served answer IDs are identical to a direct
// DB.Query on the same dataset.
func TestServerMatchesDirectQuery(t *testing.T) {
	db := testDB(t)
	_, _, cl := newTestServer(t, server.Config{DB: db})
	ctx := context.Background()

	for _, strat := range paperStrategies {
		spec := testSpec(db, strat)
		direct, err := db.Query(spec)
		if err != nil {
			t.Fatalf("%s: direct query: %v", strat, err)
		}
		served, err := cl.Query(ctx, spec)
		if err != nil {
			t.Fatalf("%s: served query: %v", strat, err)
		}
		if !reflect.DeepEqual(direct.IDs, served.IDs) {
			t.Errorf("%s: served IDs differ from direct query:\n direct: %v\n served: %v",
				strat, direct.IDs, served.IDs)
		}
		if strat == "ALL" && len(served.IDs) == 0 {
			t.Errorf("ALL: expected a non-empty answer set for a query centered on a stored point")
		}
		if served.Stats.Retrieved != direct.Stats.Retrieved ||
			served.Stats.Integrations != direct.Stats.Integrations {
			t.Errorf("%s: served stats differ: direct %+v served %+v", strat, direct.Stats, served.Stats)
		}
	}
}

// TestServerMatchesDirectQueryMonteCarlo repeats the identity check with the
// paper's Monte Carlo evaluator: the per-candidate streams are deterministic
// for a fixed seed, so served and direct answers must still agree exactly.
func TestServerMatchesDirectQueryMonteCarlo(t *testing.T) {
	db := testDB(t, gaussrange.WithMonteCarlo(2000), gaussrange.WithSeed(7))
	_, _, cl := newTestServer(t, server.Config{DB: db})
	spec := testSpec(db, "ALL")

	direct, err := db.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	served, err := cl.Query(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct.IDs, served.IDs) {
		t.Errorf("MC answers differ:\n direct: %v\n served: %v", direct.IDs, served.IDs)
	}
}

func TestBatchMatchesDirectQueries(t *testing.T) {
	db := testDB(t)
	_, _, cl := newTestServer(t, server.Config{DB: db})
	ctx := context.Background()

	var specs []gaussrange.QuerySpec
	for i := 0; i < 8; i++ {
		center, err := db.Point(int64(i * 17))
		if err != nil {
			t.Fatal(err)
		}
		spec := testSpec(db, "ALL")
		spec.Center = center
		specs = append(specs, spec)
	}
	served, err := cl.QueryBatch(ctx, specs, 4)
	if err != nil {
		t.Fatalf("QueryBatch: %v", err)
	}
	if len(served) != len(specs) {
		t.Fatalf("got %d results, want %d", len(served), len(specs))
	}
	for i, spec := range specs {
		direct, err := db.Query(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(direct.IDs, served[i].IDs) {
			t.Errorf("batch query %d: served %v, direct %v", i, served[i].IDs, direct.IDs)
		}
	}
}

func TestProbAndPoints(t *testing.T) {
	db := testDB(t)
	_, ts, cl := newTestServer(t, server.Config{DB: db})
	ctx := context.Background()
	spec := testSpec(db, "ALL")

	direct, err := db.QueryProb(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	served, err := cl.QueryProb(ctx, spec, 0)
	if err != nil {
		t.Fatalf("QueryProb: %v", err)
	}
	if served != direct {
		t.Errorf("served probability %v, direct %v", served, direct)
	}

	coords, err := cl.Point(ctx, 3)
	if err != nil {
		t.Fatalf("Point: %v", err)
	}
	want, _ := db.Point(3)
	if !reflect.DeepEqual(coords, want) {
		t.Errorf("Point(3) = %v, want %v", coords, want)
	}

	if _, err := cl.Point(ctx, int64(db.Len())); err == nil {
		t.Error("expected 404 for out-of-range point id")
	} else if ae, ok := err.(*client.APIError); !ok || ae.Status != http.StatusNotFound {
		t.Errorf("expected APIError 404, got %v", err)
	}

	// /v1/prob with an unknown id is 404 too.
	body, _ := json.Marshal(server.ProbRequest{QueryRequest: server.RequestFromSpec(spec), ID: -1})
	resp, err := http.Post(ts.URL+"/v1/prob", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("prob(-1) status = %d, want 404", resp.StatusCode)
	}
}

// TestAdmissionSaturation429 fills every admission slot with held requests
// and asserts the next request is rejected with 429 — and that slots are
// reusable after the held requests complete.
func TestAdmissionSaturation429(t *testing.T) {
	db := testDB(t)
	s, _, cl := newTestServer(t, server.Config{DB: db, MaxInflight: 2})

	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	s.SetPreQuery(func(ctx context.Context) {
		entered <- struct{}{}
		<-release
	})
	ctx := context.Background()
	spec := testSpec(db, "ALL")

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = cl.Query(ctx, spec)
		}(i)
	}
	for i := 0; i < 2; i++ {
		select {
		case <-entered:
		case <-time.After(5 * time.Second):
			t.Fatal("held queries never reached execution")
		}
	}

	// Both slots are held: the third query must be shed with 429.
	_, err := cl.Query(ctx, spec)
	if !client.IsOverloaded(err) {
		t.Fatalf("expected 429 overload rejection, got %v", err)
	}

	close(release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("held query %d failed: %v", i, err)
		}
	}

	// Slots drained: the same query is admitted now.
	s.SetPreQuery(nil)
	if _, err := cl.Query(ctx, spec); err != nil {
		t.Fatalf("query after drain: %v", err)
	}
	if snap := s.Stats().Admission; snap.Rejected != 1 || snap.Inflight != 0 {
		t.Errorf("admission stats = %+v, want 1 rejection and 0 inflight", snap)
	}
}

// TestDeadlineExpiry holds a query past its requested timeout_ms and asserts
// the server maps the expired query context to 504.
func TestDeadlineExpiry(t *testing.T) {
	db := testDB(t)
	s, ts, _ := newTestServer(t, server.Config{DB: db})
	s.SetPreQuery(func(ctx context.Context) { <-ctx.Done() })

	req := server.RequestFromSpec(testSpec(db, "ALL"))
	req.TimeoutMS = 30
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	var er server.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(er.Error, "deadline") {
		t.Errorf("error %q does not mention the deadline", er.Error)
	}
}

// TestServerDefaultTimeout proves the configured default applies when the
// request carries no deadline of its own.
func TestServerDefaultTimeout(t *testing.T) {
	db := testDB(t)
	s, ts, _ := newTestServer(t, server.Config{DB: db, DefaultTimeout: 30 * time.Millisecond})
	s.SetPreQuery(func(ctx context.Context) { <-ctx.Done() })

	body, _ := json.Marshal(server.RequestFromSpec(testSpec(db, "ALL")))
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 from the default timeout", resp.StatusCode)
	}
}

// TestGracefulDrain starts a real http.Server, holds a query in flight, and
// asserts Shutdown waits for it: the held query completes successfully and
// only then does Shutdown return.
func TestGracefulDrain(t *testing.T) {
	db := testDB(t)
	s, err := server.New(server.Config{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	s.SetPreQuery(func(ctx context.Context) {
		entered <- struct{}{}
		<-release
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)

	cl := client.New("http://"+ln.Addr().String(), client.WithRetries(0))
	queryDone := make(chan error, 1)
	var res *gaussrange.Result
	go func() {
		var err error
		res, err = cl.Query(context.Background(), testSpec(db, "ALL"))
		queryDone <- err
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("query never reached execution")
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- hs.Shutdown(ctx)
	}()

	// The query is still held, so Shutdown must still be draining.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a query was in flight", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(release)
	if err := <-queryDone; err != nil {
		t.Fatalf("in-flight query failed during drain: %v", err)
	}
	if res == nil || len(res.IDs) == 0 {
		t.Error("drained query returned no answers")
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

func TestStatszAndHealthz(t *testing.T) {
	db := testDB(t)
	_, _, cl := newTestServer(t, server.Config{DB: db, MaxInflight: 4})
	ctx := context.Background()

	h, err := cl.Health(ctx)
	if err != nil {
		t.Fatalf("Health: %v", err)
	}
	if h.Status != "ok" || h.Points != db.Len() || h.Dim != 2 {
		t.Errorf("Health = %+v", h)
	}

	spec := testSpec(db, "ALL")
	for i := 0; i < 5; i++ {
		if _, err := cl.Query(ctx, spec); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := cl.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if snap.Points != db.Len() || snap.Dim != 2 {
		t.Errorf("snapshot dataset = %d points %d-D", snap.Points, snap.Dim)
	}
	if snap.Queries.Queries != 5 {
		t.Errorf("query total = %d, want 5", snap.Queries.Queries)
	}
	if snap.Queries.Retrieved == 0 || snap.Queries.Answers == 0 {
		t.Errorf("per-phase totals not accumulated: %+v", snap.Queries)
	}
	// Five same-shape queries: one compile, four plan-cache hits.
	if snap.PlanCache.Hits < 4 {
		t.Errorf("plan cache hits = %d, want >= 4", snap.PlanCache.Hits)
	}
	ep, ok := snap.Endpoints["/v1/query"]
	if !ok {
		t.Fatalf("no /v1/query endpoint stats in %v", snap.EndpointNames())
	}
	if ep.Requests != 5 || ep.Latency.Count != 5 {
		t.Errorf("endpoint stats = %+v, want 5 requests observed", ep)
	}
	if ep.Latency.MeanMS() <= 0 {
		t.Errorf("mean latency = %v, want > 0", ep.Latency.MeanMS())
	}
}

// TestStatszEarlyKernelStats proves the early-exit kernel's accounting flows
// end to end: core → Result → wire QueryStats → /statsz totals — including
// the grid-fallback flag for a δ too small for the cell directory.
func TestStatszEarlyKernelStats(t *testing.T) {
	db := testDB(t, gaussrange.WithMonteCarlo(2000), gaussrange.WithSeed(7),
		gaussrange.WithPhase3Kernel(gaussrange.KernelSharedEarly))
	_, _, cl := newTestServer(t, server.Config{DB: db})
	ctx := context.Background()

	spec := testSpec(db, "ALL")
	direct, err := db.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	served, err := cl.Query(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if served.Stats.SamplesTouched != direct.Stats.SamplesTouched ||
		served.Stats.CellsSkipped != direct.Stats.CellsSkipped ||
		served.Stats.CellsFullInside != direct.Stats.CellsFullInside ||
		served.Stats.EarlyDecisions != direct.Stats.EarlyDecisions ||
		served.Stats.GridFallback != direct.Stats.GridFallback {
		t.Errorf("served early-kernel stats differ:\n direct: %+v\n served: %+v",
			direct.Stats, served.Stats)
	}
	if direct.Stats.Integrations > 0 && direct.Stats.EarlyDecisions == 0 {
		t.Error("early kernel decided nothing early on the served workload")
	}
	if direct.Stats.GridFallback {
		t.Error("unexpected grid fallback at paper-scale δ")
	}

	// δ=0.05 over a ~56-unit cloud extent wants ~800k directory cells, past
	// the 64·samples cap: the plan must fall back to the flat decide scan and
	// say so over the wire.
	tiny := spec
	tiny.Delta = 0.05
	tiny.Theta = 1e-6
	fb, err := cl.Query(ctx, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if !fb.Stats.GridFallback {
		t.Error("grid fallback not surfaced over the wire")
	}

	snap, err := cl.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if snap.Queries.Queries != 2 {
		t.Errorf("query total = %d, want 2", snap.Queries.Queries)
	}
	if snap.Queries.SamplesTouched == 0 || snap.Queries.SamplesDrawn == 0 {
		t.Errorf("sample totals not accumulated: %+v", snap.Queries)
	}
	if snap.Queries.EarlyDecisions == 0 {
		t.Errorf("early-decision total not accumulated: %+v", snap.Queries)
	}
	if snap.Queries.GridFallbacks != 1 {
		t.Errorf("grid fallback count = %d, want 1", snap.Queries.GridFallbacks)
	}
}

// TestStatszTieredKernelStats: the tiered kernel's per-tier decision counts
// must survive the wire round-trip and accumulate into the /statsz totals.
func TestStatszTieredKernelStats(t *testing.T) {
	db := testDB(t, gaussrange.WithMonteCarlo(2000), gaussrange.WithSeed(7),
		gaussrange.WithPhase3Kernel(gaussrange.KernelTiered))
	_, ts, cl := newTestServer(t, server.Config{DB: db})
	ctx := context.Background()

	spec := testSpec(db, "ALL")
	direct, err := db.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	served, err := cl.Query(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct.IDs, served.IDs) {
		t.Errorf("served tiered IDs differ from direct query")
	}
	// The client decodes wire stats back into library form; every tier count
	// must survive the round-trip.
	bf, env, exact, mcc := served.Stats.TierMix()
	if bf != direct.Stats.TierBF || env != direct.Stats.TierEnvelope ||
		exact != direct.Stats.TierExact || mcc != direct.Stats.TierMC {
		t.Errorf("round-tripped tier mix (bf=%d env=%d exact=%d mc=%d) != direct (bf=%d env=%d exact=%d mc=%d)",
			bf, env, exact, mcc, direct.Stats.TierBF, direct.Stats.TierEnvelope,
			direct.Stats.TierExact, direct.Stats.TierMC)
	}
	if got := bf + env + exact + mcc; got != direct.Stats.Integrations {
		t.Errorf("tier mix total %d != integrations %d", got, direct.Stats.Integrations)
	}

	// The raw wire JSON must carry the tier_mix object (not just the Go
	// client's decoding of it) so non-Go consumers see it too.
	body, err := json.Marshal(server.RequestFromSpec(spec))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var decoded struct {
		Stats struct {
			TierMix *server.TierMix `json:"tier_mix"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("decoding raw response: %v", err)
	}
	if direct.Stats.Integrations > 0 && decoded.Stats.TierMix == nil {
		t.Fatalf("tier_mix missing from raw wire JSON: %s", raw)
	}
	if tm := decoded.Stats.TierMix; tm != nil && tm.Total() != direct.Stats.Integrations {
		t.Errorf("raw tier_mix %+v total != integrations %d", *tm, direct.Stats.Integrations)
	}

	snap, err := cl.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	// Two served queries ran the same spec (client + raw POST), so the
	// accumulated tier mix is exactly double one query's integrations.
	if snap.Queries.TierMix.Total() != 2*direct.Stats.Integrations {
		t.Errorf("/statsz tier_mix total = %d, want %d",
			snap.Queries.TierMix.Total(), 2*direct.Stats.Integrations)
	}
	if snap.Queries.TierMix.SampleFree() == 0 && direct.Stats.Integrations > 0 {
		t.Error("tiered kernel closed nothing analytically on the served workload")
	}
}

func TestRejectsMalformedRequests(t *testing.T) {
	db := testDB(t)
	_, ts, _ := newTestServer(t, server.Config{DB: db, MaxBatchSize: 2})

	for _, tc := range []struct {
		name, path, body string
		method           string
		want             int
	}{
		{"bad json", "/v1/query", "{", http.MethodPost, http.StatusBadRequest},
		{"bad spec", "/v1/query", `{"center":[1],"cov":[[1]],"delta":1,"theta":0.5}`, http.MethodPost, http.StatusBadRequest},
		{"get query", "/v1/query", "", http.MethodGet, http.StatusMethodNotAllowed},
		{"oversized batch", "/v1/query/batch", `{"queries":[{},{},{}]}`, http.MethodPost, http.StatusBadRequest},
		{"points without ids", "/v1/points", "", http.MethodGet, http.StatusBadRequest},
		{"points bad id", "/v1/points?id=abc", "", http.MethodGet, http.StatusBadRequest},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

func ExampleServer() {
	db, _ := gaussrange.Load([][]float64{{0, 0}, {3, 4}, {100, 100}})
	s, _ := server.New(server.Config{DB: db, MaxInflight: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cl := client.New(ts.URL)
	res, _ := cl.Query(context.Background(), gaussrange.QuerySpec{
		Center: []float64{0, 0},
		Cov:    [][]float64{{4, 0}, {0, 4}},
		Delta:  6,
		Theta:  0.05,
	})
	fmt.Println(res.IDs)
	// Output: [0 1]
}
