package server

import (
	"testing"
	"time"
)

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram()
	for i := 0; i < 100; i++ {
		h.observe(time.Duration(i+1) * time.Millisecond) // 1..100ms
	}
	snap := h.snapshot()
	if snap.Count != 100 {
		t.Fatalf("count = %d", snap.Count)
	}
	if m := snap.MeanMS(); m < 50 || m > 51.5 {
		t.Errorf("mean = %.2fms, want ~50.5", m)
	}
	if q := snap.Quantile(0.5); q < 25 || q > 75 {
		t.Errorf("p50 = %.2fms, want within the middle buckets", q)
	}
	if q := snap.Quantile(1); q > 100.0001 {
		t.Errorf("p100 = %.2fms, must not exceed the observed max", q)
	}
	var empty Histogram
	if empty.Quantile(0.9) != 0 || empty.MeanMS() != 0 {
		t.Error("empty histogram must report zeros")
	}
}

func TestAdmissionCounters(t *testing.T) {
	a := newAdmission(2)
	if !a.tryAcquire() || !a.tryAcquire() {
		t.Fatal("first two acquisitions must succeed")
	}
	if a.tryAcquire() {
		t.Fatal("third acquisition must fail at capacity 2")
	}
	a.release()
	if !a.tryAcquire() {
		t.Fatal("acquisition after release must succeed")
	}
	snap := a.snapshot()
	if snap.MaxInflight != 2 || snap.Inflight != 2 || snap.Admitted != 3 || snap.Rejected != 1 {
		t.Errorf("snapshot = %+v", snap)
	}
}
