package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"gaussrange"
	"gaussrange/replica"
)

const statusTooManyRequests = http.StatusTooManyRequests

// statusClientClosedRequest reports a request whose client went away before
// the query finished (nginx's conventional 499; the reply is rarely seen).
const statusClientClosedRequest = 499

// maxRequestBytes bounds a request body; batch requests are the largest
// legitimate payload (thousands of specs) and fit comfortably.
const maxRequestBytes = 16 << 20

// Config configures a Server.
type Config struct {
	// DB is the loaded dataset to serve. Required.
	DB *gaussrange.DB

	// MaxInflight bounds the number of requests concurrently executing
	// query work; requests beyond it receive 429 immediately.
	// Default: 2 × GOMAXPROCS.
	MaxInflight int

	// DefaultTimeout bounds query execution when the request carries no
	// timeout_ms of its own. 0 means unbounded.
	DefaultTimeout time.Duration

	// MaxBatchSize caps the number of queries in one batch request
	// (default 1024).
	MaxBatchSize int

	// BatchWorkers caps the worker-pool size a batch request may ask for
	// (default GOMAXPROCS).
	BatchWorkers int

	// Coalesce merges concurrent /v1/query requests that share a plan
	// fingerprint and storage epoch into one batched execution holding one
	// admission slot (see coalescer). Most effective when the DB runs the
	// shared-batch Phase-3 kernel, which sweeps the common sample cloud
	// once for the whole group. Off by default: coalesced queries execute
	// under the server's default timeout rather than their own timeout_ms.
	Coalesce bool

	// ReadOnly refuses every mutation endpoint with 403 — the mode follower
	// read replicas serve in (writes must go to the leader).
	ReadOnly bool

	// Follower, when non-nil, marks this server a read replica fed by the
	// given log tailer: query responses carry replica_epoch, /healthz and
	// /statsz report replication state. Usually paired with ReadOnly.
	Follower *replica.Follower
}

// Server serves a gaussrange.DB over HTTP. Create one with New and mount
// Handler on an http.Server. Handlers execute queries synchronously, so
// http.Server.Shutdown drains in-flight queries before returning.
type Server struct {
	db    *gaussrange.DB
	cfg   Config
	adm   *admission
	met   *metrics
	coal  *coalescer // non-nil when Config.Coalesce is on
	start time.Time

	// preQuery, when non-nil, runs after admission with the query context —
	// a test seam for holding requests in flight deterministically.
	preQuery func(ctx context.Context)
}

// New validates cfg, applies defaults, and returns a Server.
func New(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, errors.New("server: Config.DB is required")
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.MaxBatchSize <= 0 {
		cfg.MaxBatchSize = 1024
	}
	if cfg.BatchWorkers <= 0 {
		cfg.BatchWorkers = runtime.GOMAXPROCS(0)
	}
	s := &Server{
		db:    cfg.DB,
		cfg:   cfg,
		adm:   newAdmission(cfg.MaxInflight),
		met:   newMetrics(),
		start: time.Now(),
	}
	if cfg.Coalesce {
		s.coal = newCoalescer(s)
	}
	return s, nil
}

// Handler returns the HTTP handler serving all endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/v1/query/batch", s.handleBatch)
	mux.HandleFunc("/v1/prob", s.handleProb)
	mux.HandleFunc("/v1/points", s.handlePoints)
	mux.HandleFunc("/v1/points/", s.handlePointByID)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statsz", s.handleStatsz)
	return mux
}

// Stats assembles the current /statsz snapshot.
func (s *Server) Stats() StatsSnapshot {
	hits, misses := s.db.PlanCacheStats()
	var rate float64
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	snap := StatsSnapshot{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Points:        s.db.Len(),
		Dim:           s.db.Dim(),
		Epoch:         s.db.Epoch(),
		PlanCache:     PlanCacheStats{Hits: hits, Misses: misses, HitRate: rate},
		Admission:     s.adm.snapshot(),
		Queries:       s.met.queryTotals(),
		Endpoints:     s.met.endpointSnapshots(),
	}
	if w, ok := s.db.WALStats(); ok {
		ws := &WALStatsz{
			Synchronous:    w.Synchronous,
			CommitWindowMS: float64(w.Batcher.MaxDelay) / 1e6,
			CommitBytes:    w.Batcher.MaxBytes,
			Groups:         w.Batcher.Groups,
			Submissions:    w.Batcher.Submissions,
			MaxGroup:       w.Batcher.MaxGroup,
			Pending:        w.Batcher.Pending,
			WindowTimer:    w.Batcher.WindowClosedBy.Timer,
			WindowBytes:    w.Batcher.WindowClosedBy.Bytes,
			WindowDrain:    w.Batcher.WindowClosedBy.Drain,
			Segments:       w.Store.Segments,
			SealedSegments: int(w.Store.SealedSegments),
			Records:        w.Store.Records,
			AppendedBytes:  int64(w.Store.AppendedBytes),
			Fsyncs:         w.Store.Fsyncs,
			LastEpoch:      w.Store.LastEpoch,
		}
		if n := w.Batcher.Submissions; n > 0 {
			ws.QueueMeanUS = float64(w.Batcher.QueueNanos) / float64(n) / 1e3
			ws.FlushMeanUS = float64(w.Batcher.FlushNanos) / float64(n) / 1e3
		}
		snap.WAL = ws
	}
	if s.cfg.Follower != nil {
		r := s.cfg.Follower.Stats()
		snap.Replica = &ReplicaStatsz{
			Epoch:            r.Epoch,
			Applied:          r.Applied,
			Skipped:          r.Skipped,
			SegmentsVerified: r.SegmentsVerified,
			Polls:            r.Polls,
			Error:            r.Err,
		}
	}
	return snap
}

// respond converts a query result to its wire form, stamping replica
// provenance when this server is a follower.
func (s *Server) respond(res *gaussrange.Result) QueryResponse {
	r := ResponseFromResult(res)
	if s.cfg.Follower != nil {
		r.ReplicaEpoch = res.Epoch
	}
	return r
}

// refuseReadOnly rejects a mutation on a read-only replica with 403.
func (s *Server) refuseReadOnly(w http.ResponseWriter, status *int) bool {
	if !s.cfg.ReadOnly {
		return false
	}
	*status = http.StatusForbidden
	writeError(w, *status, "read-only replica: mutations must go to the leader")
	return true
}

// queryContext derives the execution context for one request: the request's
// own timeout_ms when given, else the server default, else unbounded. The
// parent is the HTTP request context, so a client disconnect cancels the
// query either way.
func (s *Server) queryContext(parent context.Context, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if d <= 0 {
		return context.WithCancel(parent)
	}
	return context.WithTimeout(parent, d)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// statusForQueryErr maps a query error to an HTTP status: deadline → 504,
// client-cancelled → 499, anything else is a spec problem → 400.
func statusForQueryErr(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	default:
		return http.StatusBadRequest
	}
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBytes)
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	return nil
}

// admit claims an execution slot or rejects with 429. The caller must
// release() on true.
func (s *Server) admit(w http.ResponseWriter) bool {
	if s.adm.tryAcquire() {
		return true
	}
	w.Header().Set("Retry-After", "1")
	writeError(w, statusTooManyRequests,
		"server overloaded: %d queries in flight (limit %d)", s.cfg.MaxInflight, s.cfg.MaxInflight)
	return false
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	const ep = "/v1/query"
	t0 := time.Now()
	status := http.StatusOK
	defer func() { s.met.observe(ep, status, time.Since(t0)) }()

	if r.Method != http.MethodPost {
		status = http.StatusMethodNotAllowed
		writeError(w, status, "use POST")
		return
	}
	var req QueryRequest
	if err := decodeBody(w, r, &req); err != nil {
		status = http.StatusBadRequest
		writeError(w, status, "%v", err)
		return
	}
	if s.coal != nil {
		s.handleQueryCoalesced(w, r, req, &status)
		return
	}
	if !s.admit(w) {
		status = statusTooManyRequests
		return
	}
	defer s.adm.release()

	ctx, cancel := s.queryContext(r.Context(), req.TimeoutMS)
	defer cancel()
	if s.preQuery != nil {
		s.preQuery(ctx)
	}
	res, err := s.db.QueryCtx(ctx, req.Spec())
	if err != nil {
		status = statusForQueryErr(err)
		writeError(w, status, "%v", err)
		return
	}
	s.met.addQuery(res.Stats, len(res.IDs))
	writeJSON(w, status, s.respond(res))
}

// handleQueryCoalesced routes one /v1/query through the coalescer. The
// request's own timeout bounds its wait for the group's answer; execution
// itself runs under the group context (see coalescer).
func (s *Server) handleQueryCoalesced(w http.ResponseWriter, r *http.Request, req QueryRequest, status *int) {
	ctx, cancel := s.queryContext(r.Context(), req.TimeoutMS)
	defer cancel()
	res, err := s.coal.do(ctx, req.Spec())
	if err != nil {
		if errors.Is(err, errOverloaded) {
			*status = statusTooManyRequests
			w.Header().Set("Retry-After", "1")
			writeError(w, *status,
				"server overloaded: %d queries in flight (limit %d)", s.cfg.MaxInflight, s.cfg.MaxInflight)
			return
		}
		*status = statusForQueryErr(err)
		writeError(w, *status, "%v", err)
		return
	}
	s.met.addQuery(res.Stats, len(res.IDs))
	writeJSON(w, *status, s.respond(res))
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	const ep = "/v1/query/batch"
	t0 := time.Now()
	status := http.StatusOK
	defer func() { s.met.observe(ep, status, time.Since(t0)) }()

	if r.Method != http.MethodPost {
		status = http.StatusMethodNotAllowed
		writeError(w, status, "use POST")
		return
	}
	var req BatchRequest
	if err := decodeBody(w, r, &req); err != nil {
		status = http.StatusBadRequest
		writeError(w, status, "%v", err)
		return
	}
	if len(req.Queries) > s.cfg.MaxBatchSize {
		status = http.StatusBadRequest
		writeError(w, status, "batch of %d queries exceeds limit %d", len(req.Queries), s.cfg.MaxBatchSize)
		return
	}
	workers := req.Workers
	if workers <= 0 || workers > s.cfg.BatchWorkers {
		workers = s.cfg.BatchWorkers
	}
	if !s.admit(w) {
		status = statusTooManyRequests
		return
	}
	defer s.adm.release()

	ctx, cancel := s.queryContext(r.Context(), req.TimeoutMS)
	defer cancel()
	if s.preQuery != nil {
		s.preQuery(ctx)
	}
	specs := make([]gaussrange.QuerySpec, len(req.Queries))
	for i, q := range req.Queries {
		specs[i] = q.Spec()
	}
	results, err := s.db.QueryBatch(ctx, specs, workers)
	if err != nil {
		status = statusForQueryErr(err)
		writeError(w, status, "%v", err)
		return
	}
	resp := BatchResponse{Results: make([]QueryResponse, len(results))}
	for i, res := range results {
		s.met.addQuery(res.Stats, len(res.IDs))
		resp.Results[i] = s.respond(res)
	}
	writeJSON(w, status, resp)
}

func (s *Server) handleProb(w http.ResponseWriter, r *http.Request) {
	const ep = "/v1/prob"
	t0 := time.Now()
	status := http.StatusOK
	defer func() { s.met.observe(ep, status, time.Since(t0)) }()

	if r.Method != http.MethodPost {
		status = http.StatusMethodNotAllowed
		writeError(w, status, "use POST")
		return
	}
	var req ProbRequest
	if err := decodeBody(w, r, &req); err != nil {
		status = http.StatusBadRequest
		writeError(w, status, "%v", err)
		return
	}
	if req.ID < 0 || req.ID >= int64(s.db.Len()) {
		status = http.StatusNotFound
		writeError(w, status, "point id %d out of range [0, %d)", req.ID, s.db.Len())
		return
	}
	if !s.admit(w) {
		status = statusTooManyRequests
		return
	}
	defer s.adm.release()

	p, err := s.db.QueryProb(req.Spec(), req.ID)
	if err != nil {
		status = http.StatusBadRequest
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, status, ProbResponse{ID: req.ID, Probability: p})
}

func (s *Server) handlePoints(w http.ResponseWriter, r *http.Request) {
	const ep = "/v1/points"
	t0 := time.Now()
	status := http.StatusOK
	defer func() { s.met.observe(ep, status, time.Since(t0)) }()

	switch r.Method {
	case http.MethodGet:
		// fall through to the lookup below
	case http.MethodPost:
		s.handleInsert(w, r, &status)
		return
	default:
		status = http.StatusMethodNotAllowed
		writeError(w, status, "use GET with ?id=…&id=…, or POST to insert")
		return
	}
	raw := r.URL.Query()["id"]
	if len(raw) == 0 {
		status = http.StatusBadRequest
		writeError(w, status, "at least one ?id= parameter is required")
		return
	}
	resp := PointsResponse{Points: make([]Point, 0, len(raw))}
	for _, v := range raw {
		id, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			status = http.StatusBadRequest
			writeError(w, status, "invalid id %q: %v", v, err)
			return
		}
		coords, err := s.db.Point(id)
		if err != nil {
			status = http.StatusNotFound
			writeError(w, status, "%v", err)
			return
		}
		resp.Points = append(resp.Points, Point{ID: id, Coords: coords})
	}
	writeJSON(w, status, resp)
}

// handleInsert serves POST /v1/points: one atomic insert batch publishing
// one epoch. Mutations go through admission like queries — an overlay
// rebuild can cost O(n), so overload sheds writes too.
func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request, status *int) {
	if s.refuseReadOnly(w, status) {
		return
	}
	var req InsertPointsRequest
	if err := decodeBody(w, r, &req); err != nil {
		*status = http.StatusBadRequest
		writeError(w, *status, "%v", err)
		return
	}
	if len(req.Points) == 0 {
		*status = http.StatusBadRequest
		writeError(w, *status, "points must not be empty")
		return
	}
	if !s.admit(w) {
		*status = statusTooManyRequests
		return
	}
	defer s.adm.release()

	var (
		ids   []int64
		epoch uint64
		err   error
	)
	if len(req.IDs) > 0 {
		// Explicit identifiers from an upstream allocator (shard router).
		_, epoch, err = s.db.ApplyWithIDs(req.Points, req.IDs, nil)
		ids = req.IDs
	} else {
		ids, _, epoch, err = s.db.Apply(req.Points, nil)
	}
	if err != nil {
		*status = http.StatusBadRequest
		writeError(w, *status, "%v", err)
		return
	}
	writeJSON(w, *status, InsertPointsResponse{IDs: ids, Epoch: epoch})
}

// handlePointByID serves DELETE /v1/points/{id}.
func (s *Server) handlePointByID(w http.ResponseWriter, r *http.Request) {
	const ep = "/v1/points/{id}"
	t0 := time.Now()
	status := http.StatusOK
	defer func() { s.met.observe(ep, status, time.Since(t0)) }()

	if r.Method != http.MethodDelete {
		status = http.StatusMethodNotAllowed
		writeError(w, status, "use DELETE /v1/points/{id}")
		return
	}
	if s.refuseReadOnly(w, &status) {
		return
	}
	id, err := strconv.ParseInt(strings.TrimPrefix(r.URL.Path, "/v1/points/"), 10, 64)
	if err != nil {
		status = http.StatusBadRequest
		writeError(w, status, "invalid point id in path: %v", err)
		return
	}
	if !s.admit(w) {
		status = statusTooManyRequests
		return
	}
	defer s.adm.release()

	_, deleted, epoch, err := s.db.Apply(nil, []int64{id})
	if err != nil {
		status = http.StatusBadRequest
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, status, DeletePointResponse{ID: id, Deleted: deleted[0], Epoch: epoch})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := Health{Status: "ok", Points: s.db.Len(), Dim: s.db.Dim(), Epoch: s.db.Epoch(), MaxID: s.db.MaxID(), ReadOnly: s.cfg.ReadOnly}
	if s.cfg.Follower != nil {
		st := s.cfg.Follower.Stats()
		h.ReplicaEpoch = st.Epoch
		h.ReplicaError = st.Err
	}
	writeJSON(w, http.StatusOK, h)
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
