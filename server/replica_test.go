package server_test

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"gaussrange"
	"gaussrange/client"
	"gaussrange/replica"
	"gaussrange/server"
)

// newLeaderFollowerPair starts a leader server over a wal-attached DB and a
// read-only follower server tailing the same segment directory.
func newLeaderFollowerPair(t *testing.T) (leaderDB *gaussrange.DB, lc, fc *client.Client, f *replica.Follower) {
	t.Helper()
	dir := t.TempDir()
	leaderDB, err := gaussrange.Open(2, gaussrange.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := leaderDB.AttachWAL(gaussrange.WALConfig{Dir: dir, CommitWindow: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { leaderDB.DetachWAL() })
	ls, err := server.New(server.Config{DB: leaderDB})
	if err != nil {
		t.Fatal(err)
	}
	lts := httptest.NewServer(ls.Handler())
	t.Cleanup(lts.Close)

	fdb, err := gaussrange.Open(2, gaussrange.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	f, err = replica.New(fdb, replica.Config{Dir: dir, Interval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Stop)
	fs, err := server.New(server.Config{DB: fdb, ReadOnly: true, Follower: f})
	if err != nil {
		t.Fatal(err)
	}
	fts := httptest.NewServer(fs.Handler())
	t.Cleanup(fts.Close)
	return leaderDB, client.New(lts.URL), client.New(fts.URL), f
}

// TestFollowerServing: write on the leader, read on the follower — the
// follower answers at ≥ the published epoch with the same ids, refuses
// mutations with 403, and reports replication state on /healthz and /statsz.
func TestFollowerServing(t *testing.T) {
	ctx := context.Background()
	_, lc, fc, f := newLeaderFollowerPair(t)

	pts := [][]float64{{1, 1}, {2, 2}, {3, 3}, {40, 40}}
	ids, epoch, err := lc.InsertPoints(ctx, pts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.CatchUp(); err != nil {
		t.Fatal(err)
	}

	spec := gaussrange.QuerySpec{Center: []float64{2, 2}, Cov: [][]float64{{1, 0}, {0, 1}}, Delta: 3, Theta: 0.2}
	lres, err := lc.Query(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := fc.QueryRaw(ctx, server.RequestFromSpec(spec))
	if err != nil {
		t.Fatal(err)
	}
	if raw.Epoch < epoch {
		t.Fatalf("follower answered at epoch %d, leader write published %d", raw.Epoch, epoch)
	}
	if raw.ReplicaEpoch != raw.Epoch {
		t.Fatalf("replica_epoch %d != answer epoch %d", raw.ReplicaEpoch, raw.Epoch)
	}
	if !reflect.DeepEqual(raw.IDs, lres.IDs) {
		t.Fatalf("follower ids %v, leader ids %v", raw.IDs, lres.IDs)
	}

	// The leader's own responses must NOT claim replica provenance.
	lraw, err := lc.QueryRaw(ctx, server.RequestFromSpec(spec))
	if err != nil {
		t.Fatal(err)
	}
	if lraw.ReplicaEpoch != 0 {
		t.Fatalf("leader response carries replica_epoch %d", lraw.ReplicaEpoch)
	}

	// Mutations on the follower are refused with 403.
	if _, _, err := fc.InsertPoints(ctx, [][]float64{{9, 9}}); err == nil {
		t.Fatal("follower accepted an insert")
	}
	if _, _, err := fc.DeletePoint(ctx, ids[0]); err == nil {
		t.Fatal("follower accepted a delete")
	}

	h, err := fc.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !h.ReadOnly || h.ReplicaEpoch < epoch || h.ReplicaError != "" {
		t.Fatalf("follower health: %+v", h)
	}
	st, err := fc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Replica == nil || st.Replica.Applied == 0 || st.Replica.Epoch < epoch {
		t.Fatalf("follower statsz replica section: %+v", st.Replica)
	}
	if st.WAL != nil {
		t.Fatal("follower statsz claims a wal")
	}

	lst, err := lc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if lst.WAL == nil || lst.WAL.Groups == 0 || lst.WAL.Records == 0 || lst.WAL.Fsyncs == 0 {
		t.Fatalf("leader statsz wal section: %+v", lst.WAL)
	}
	if lst.Replica != nil {
		t.Fatal("leader statsz claims a replica section")
	}
}
