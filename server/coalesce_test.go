package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"gaussrange"
	"gaussrange/server"
)

// TestCoalescedQueriesMatchSerial builds one coalesce group deterministically
// — the leader is parked in the preQuery seam while followers enqueue — and
// checks the whole contract: every member gets the same answer a direct query
// would, every member reports the group size, exactly one member is the group
// leader, the group consumed one admission slot, and /statsz accounts the
// coalesced queries.
func TestCoalescedQueriesMatchSerial(t *testing.T) {
	db := testDB(t,
		gaussrange.WithMonteCarlo(20000),
		gaussrange.WithSeed(5),
		gaussrange.WithPhase3Kernel(gaussrange.KernelSharedBatch))
	s, _, cl := newTestServer(t, server.Config{DB: db, Coalesce: true})

	gate := make(chan struct{})
	entered := make(chan struct{}, 16)
	s.SetPreQuery(func(ctx context.Context) { entered <- struct{}{}; <-gate })

	const followers = 5
	specs := make([]gaussrange.QuerySpec, followers+1)
	for i := range specs {
		center, err := db.Point(int64(i * 50))
		if err != nil {
			t.Fatal(err)
		}
		// Same shape (Σ, δ, θ, strategy), different centers: one plan
		// fingerprint, so all six requests coalesce into one group.
		specs[i] = testSpec(db, "ALL")
		specs[i].Center = center
	}

	ctx := context.Background()
	results := make([]*gaussrange.Result, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], errs[0] = cl.Query(ctx, specs[0])
	}()
	<-entered // the leader holds its admission slot inside preQuery

	for i := 1; i < len(specs); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = cl.Query(ctx, specs[i])
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.CoalesceWaiting() < followers {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d followers enqueued", s.CoalesceWaiting(), followers)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	groups := 0
	for i := range specs {
		if errs[i] != nil {
			t.Fatalf("member %d: %v", i, errs[i])
		}
		want, err := db.Query(specs[i])
		if err != nil {
			t.Fatal(err)
		}
		if len(results[i].IDs) != len(want.IDs) {
			t.Fatalf("member %d: coalesced answered %d ids, direct %d", i, len(results[i].IDs), len(want.IDs))
		}
		for j := range want.IDs {
			if results[i].IDs[j] != want.IDs[j] {
				t.Fatalf("member %d: coalesced IDs differ from direct query", i)
			}
		}
		if results[i].Stats.BatchQueries != len(specs) {
			t.Errorf("member %d: BatchQueries = %d, want %d", i, results[i].Stats.BatchQueries, len(specs))
		}
		groups += results[i].Stats.BatchGroups
	}
	if groups != 1 {
		t.Errorf("BatchGroups sums to %d, want 1", groups)
	}

	snap, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Admission.Admitted != 1 {
		t.Errorf("admitted = %d, want 1 (one slot for the whole group)", snap.Admission.Admitted)
	}
	if snap.Queries.CoalescedQueries != uint64(len(specs)) {
		t.Errorf("coalesced_queries = %d, want %d", snap.Queries.CoalescedQueries, len(specs))
	}
	if snap.Queries.BatchGroups != 1 {
		t.Errorf("batch_groups = %d, want 1", snap.Queries.BatchGroups)
	}
}

// TestCoalesceErrorIsolation: a malformed spec through the coalesced path
// fails with 400 without wedging the coalescer, and healthy queries keep
// working before and after.
func TestCoalesceErrorIsolation(t *testing.T) {
	db := testDB(t,
		gaussrange.WithMonteCarlo(5000),
		gaussrange.WithPhase3Kernel(gaussrange.KernelSharedBatch))
	_, _, cl := newTestServer(t, server.Config{DB: db, Coalesce: true})
	ctx := context.Background()

	good := testSpec(db, "ALL")
	if _, err := cl.Query(ctx, good); err != nil {
		t.Fatalf("healthy coalesced query: %v", err)
	}
	bad := good
	bad.Cov = [][]float64{{1, 0}, {0, -1}}
	if _, err := cl.Query(ctx, bad); err == nil {
		t.Fatal("indefinite covariance accepted through the coalesced path")
	}
	if _, err := cl.Query(ctx, good); err != nil {
		t.Fatalf("healthy query after a failed one: %v", err)
	}
}

// TestCoalesceOverload: when no admission slot is free, a would-be leader is
// rejected with 429 exactly like the non-coalesced path.
func TestCoalesceOverload(t *testing.T) {
	db := testDB(t,
		gaussrange.WithMonteCarlo(5000),
		gaussrange.WithPhase3Kernel(gaussrange.KernelSharedBatch))
	s, ts, cl := newTestServer(t, server.Config{DB: db, Coalesce: true, MaxInflight: 1})

	gate := make(chan struct{})
	entered := make(chan struct{}, 16)
	s.SetPreQuery(func(ctx context.Context) { entered <- struct{}{}; <-gate })

	// Occupy the only slot with a batch request parked in preQuery.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := cl.QueryBatch(context.Background(), []gaussrange.QuerySpec{testSpec(db, "ALL")}, 1); err != nil {
			t.Errorf("batch holding the slot: %v", err)
		}
	}()
	<-entered

	body, err := json.Marshal(server.RequestFromSpec(testSpec(db, "ALL")))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("saturated coalesced query: status %d, want 429", resp.StatusCode)
	}
	close(gate)
	wg.Wait()
}
