package server

import (
	"sync"
	"time"

	"gaussrange"
)

// latencyBucketBoundsMS are the histogram bucket upper bounds, exponential
// from sub-millisecond (cache-hit exact queries) to 10 s (cold Monte Carlo
// batches); one overflow bucket follows.
var latencyBucketBoundsMS = []float64{
	0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
}

// histogram is the mutable counterpart of the wire Histogram.
type histogram struct {
	counts  []uint64
	count   uint64
	totalNS int64
	maxNS   int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]uint64, len(latencyBucketBoundsMS)+1)}
}

func (h *histogram) observe(d time.Duration) {
	ms := float64(d.Nanoseconds()) / 1e6
	i := 0
	for i < len(latencyBucketBoundsMS) && ms > latencyBucketBoundsMS[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.totalNS += d.Nanoseconds()
	if ns := d.Nanoseconds(); ns > h.maxNS {
		h.maxNS = ns
	}
}

func (h *histogram) snapshot() Histogram {
	return Histogram{
		BoundsMS: append([]float64(nil), latencyBucketBoundsMS...),
		Counts:   append([]uint64(nil), h.counts...),
		Count:    h.count,
		TotalNS:  h.totalNS,
		MaxNS:    h.maxNS,
	}
}

// metrics aggregates per-endpoint request accounting and per-phase query
// totals. One mutex suffices: updates are a handful of integer adds per
// request, negligible next to Phase-3 work.
type metrics struct {
	mu        sync.Mutex
	endpoints map[string]*endpointMetrics

	queries    uint64
	answers    uint64
	statTotals gaussrange.Stats
	// gridFallbacks counts queries that reported a grid→flat fallback;
	// Stats.Add only ORs the per-query flag, so the count lives here.
	gridFallbacks uint64
	// coalescedQueries counts queries that ran inside a multi-query
	// batched-kernel group (BatchQueries ≥ 2): a solo batch shares nothing,
	// so it does not count as coalesced.
	coalescedQueries uint64
}

type endpointMetrics struct {
	requests uint64
	errors   uint64
	rejected uint64
	latency  *histogram
}

func newMetrics() *metrics {
	return &metrics{endpoints: make(map[string]*endpointMetrics)}
}

func (m *metrics) endpoint(name string) *endpointMetrics {
	em, ok := m.endpoints[name]
	if !ok {
		em = &endpointMetrics{latency: newHistogram()}
		m.endpoints[name] = em
	}
	return em
}

// observe records one completed request on an endpoint.
func (m *metrics) observe(name string, status int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	em := m.endpoint(name)
	em.requests++
	switch {
	case status == statusTooManyRequests:
		em.rejected++
	case status >= 400:
		em.errors++
	}
	em.latency.observe(d)
}

// addQuery folds one successful query's per-phase stats into the totals.
func (m *metrics) addQuery(st gaussrange.Stats, answers int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queries++
	m.answers += uint64(answers)
	m.statTotals.Add(st)
	if st.GridFallback {
		m.gridFallbacks++
	}
	if st.BatchQueries >= 2 {
		m.coalescedQueries++
	}
}

func (m *metrics) queryTotals() QueryTotals {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.statTotals
	return QueryTotals{
		Queries:          m.queries,
		Answers:          m.answers,
		Retrieved:        uint64(st.Retrieved),
		PrunedFringe:     uint64(st.PrunedFringe),
		PrunedOR:         uint64(st.PrunedOR),
		PrunedBF:         uint64(st.PrunedBF),
		AcceptedBF:       uint64(st.AcceptedBF),
		Integrations:     uint64(st.Integrations),
		NodesRead:        uint64(st.NodesRead),
		NodesReadPacked:  uint64(st.NodesReadPacked),
		OverlayScanned:   uint64(st.OverlayScanned),
		F32Rechecks:      uint64(st.F32Rechecks),
		IndexNS:          st.IndexTime.Nanoseconds(),
		FilterNS:         st.FilterTime.Nanoseconds(),
		ProbNS:           st.ProbTime.Nanoseconds(),
		SamplesDrawn:     uint64(st.SamplesDrawn),
		SamplesTouched:   uint64(st.SamplesTouched),
		CellsSkipped:     uint64(st.CellsSkipped),
		CellsFullInside:  uint64(st.CellsFullInside),
		EarlyDecisions:   uint64(st.EarlyDecisions),
		TierMix:          TierMix{BF: st.TierBF, Envelope: st.TierEnvelope, Exact: st.TierExact, MC: st.TierMC},
		GridFallbacks:    m.gridFallbacks,
		CoalescedQueries: m.coalescedQueries,
		BatchGroups:      uint64(st.BatchGroups),
	}
}

func (m *metrics) endpointSnapshots() map[string]EndpointStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]EndpointStats, len(m.endpoints))
	for name, em := range m.endpoints {
		out[name] = EndpointStats{
			Requests: em.requests,
			Errors:   em.errors,
			Rejected: em.rejected,
			Latency:  em.latency.snapshot(),
		}
	}
	return out
}
