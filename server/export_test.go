package server

import "context"

// SetPreQuery installs the pre-query hook — a seam for tests that must hold
// requests in flight deterministically (admission saturation, deadline
// expiry, graceful drain). Only compiled into test binaries.
func (s *Server) SetPreQuery(fn func(ctx context.Context)) { s.preQuery = fn }

// CoalesceWaiting reports the number of followers enqueued on open coalesce
// groups — lets tests build a group deterministically before releasing the
// leader. 0 when coalescing is off.
func (s *Server) CoalesceWaiting() int {
	if s.coal == nil {
		return 0
	}
	return s.coal.waiting()
}
