package server

import "context"

// SetPreQuery installs the pre-query hook — a seam for tests that must hold
// requests in flight deterministically (admission saturation, deadline
// expiry, graceful drain). Only compiled into test binaries.
func (s *Server) SetPreQuery(fn func(ctx context.Context)) { s.preQuery = fn }
