package server

import (
	"context"
	"errors"
	"sync"

	"gaussrange"
)

// errOverloaded rejects a coalesced request whose group leader could not
// claim an admission slot.
var errOverloaded = errors.New("server overloaded")

// coalescer merges concurrent /v1/query requests that share a compiled-plan
// fingerprint and storage epoch into one batched execution. The first
// request to arrive for a (fingerprint, epoch) key becomes the group leader:
// it claims ONE admission slot, runs the group through db.QueryBatch — which
// under the shared-batch kernel sweeps the common sample cloud once for all
// centers — and fans each member's Result back to its own handler. Requests
// arriving while the leader executes enqueue on the group and are drained as
// the next generation under the same slot, so a burst of same-shape queries
// costs one admission slot and one cloud sweep per generation instead of one
// of each per request.
//
// Followers never touch the admission semaphore and wait on their own
// request context, so a follower's disconnect or deadline abandons only its
// reply, never the group. The group executes under a fresh context bounded
// by the server's default timeout — detached from the leader's request so a
// leader disconnect cannot cancel its groupmates' work.
type coalescer struct {
	s  *Server
	mu sync.Mutex
	// groups holds the open group per key; a group stays registered while
	// its leader drains generations and leaves the map when the leader
	// finds no pending calls (or aborts on admission rejection).
	groups map[coalesceKey]*coalesceGroup
}

// coalesceKey scopes a group: queries batch only when they rebind the same
// compiled plan (fingerprint) against the same storage epoch, so a mutation
// between arrivals starts a new group rather than mixing epochs.
type coalesceKey struct {
	fp    string
	epoch uint64
}

type coalesceGroup struct {
	pending []*coalesceCall
}

// coalesceCall is one request's seat in a group. done is buffered so the
// leader's fan-out never blocks on an abandoned follower.
type coalesceCall struct {
	spec gaussrange.QuerySpec
	done chan coalesceReply
}

type coalesceReply struct {
	res *gaussrange.Result
	err error
}

func newCoalescer(s *Server) *coalescer {
	return &coalescer{s: s, groups: make(map[coalesceKey]*coalesceGroup)}
}

// do answers one /v1/query request through the coalescer. ctx is the
// caller's wait context (request context plus its timeout); the group's
// execution context is derived separately.
func (c *coalescer) do(ctx context.Context, spec gaussrange.QuerySpec) (*gaussrange.Result, error) {
	fp, err := c.s.db.PlanFingerprint(spec)
	if err != nil {
		return nil, err
	}
	key := coalesceKey{fp: fp, epoch: c.s.db.Epoch()}
	call := &coalesceCall{spec: spec, done: make(chan coalesceReply, 1)}

	c.mu.Lock()
	if g, ok := c.groups[key]; ok {
		// Follower: join the open group and wait for the leader's fan-out.
		g.pending = append(g.pending, call)
		c.mu.Unlock()
		select {
		case rep := <-call.done:
			return rep.res, rep.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	g := &coalesceGroup{}
	c.groups[key] = g
	c.mu.Unlock()

	// Leader: one admission slot covers the whole group, generation after
	// generation.
	if !c.s.adm.tryAcquire() {
		c.abort(key, g)
		return nil, errOverloaded
	}
	defer c.s.adm.release()

	gctx, cancel := c.s.queryContext(context.Background(), 0)
	defer cancel()
	if c.s.preQuery != nil {
		c.s.preQuery(gctx)
	}

	first := true
	for {
		c.mu.Lock()
		calls := g.pending
		g.pending = nil
		if !first && len(calls) == 0 {
			delete(c.groups, key)
			c.mu.Unlock()
			break
		}
		c.mu.Unlock()
		if first {
			calls = append([]*coalesceCall{call}, calls...)
			first = false
		}
		c.run(gctx, calls)
	}
	rep := <-call.done
	return rep.res, rep.err
}

// run executes one generation and fans results back. A batch-wide error
// falls back to per-call execution so one malformed spec cannot fail its
// groupmates.
func (c *coalescer) run(ctx context.Context, calls []*coalesceCall) {
	specs := make([]gaussrange.QuerySpec, len(calls))
	for i, cl := range calls {
		specs[i] = cl.spec
	}
	results, err := c.s.db.QueryBatch(ctx, specs, c.s.cfg.BatchWorkers)
	if err == nil {
		for i, cl := range calls {
			cl.done <- coalesceReply{res: results[i]}
		}
		return
	}
	for _, cl := range calls {
		res, cerr := c.s.db.QueryCtx(ctx, cl.spec)
		cl.done <- coalesceReply{res: res, err: cerr}
	}
}

// abort deregisters a group whose leader was rejected by admission, failing
// every already-enqueued follower the same way.
func (c *coalescer) abort(key coalesceKey, g *coalesceGroup) {
	c.mu.Lock()
	pending := g.pending
	g.pending = nil
	delete(c.groups, key)
	c.mu.Unlock()
	for _, cl := range pending {
		cl.done <- coalesceReply{err: errOverloaded}
	}
}

// waiting reports the number of enqueued followers across open groups — a
// test observation point.
func (c *coalescer) waiting() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, g := range c.groups {
		n += len(g.pending)
	}
	return n
}
