package gaussrange

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestLoadWithIDsMatchesLoad verifies a DB loaded under explicit global ids
// answers queries with the same ids as a plain sequential Load.
func TestLoadWithIDsMatchesLoad(t *testing.T) {
	pts := gridPoints(100, 5)
	full, err := Load(pts)
	if err != nil {
		t.Fatal(err)
	}
	// Same points, same ids, but loaded id-addressed and unsorted.
	ids := make([]int64, len(pts))
	shuffled := make([][]float64, len(pts))
	for i := range pts {
		j := (i*37 + 11) % len(pts)
		ids[i] = int64(j)
		shuffled[i] = pts[j]
	}
	byID, err := LoadWithIDs(shuffled, ids)
	if err != nil {
		t.Fatal(err)
	}
	if byID.MaxID() != full.MaxID() {
		t.Fatalf("MaxID %d vs %d", byID.MaxID(), full.MaxID())
	}
	spec := QuerySpec{
		Center: []float64{22, 22},
		Cov:    [][]float64{{30, 5}, {5, 20}},
		Delta:  12,
		Theta:  0.05,
	}
	a, err := full.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := byID.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.IDs) == 0 {
		t.Fatal("test query returned no answers")
	}
	if !reflect.DeepEqual(a.IDs, b.IDs) {
		t.Fatalf("ids diverge:\n full %v\n byid %v", a.IDs, b.IDs)
	}
}

// TestLoadWithIDsSparse checks holes: ids with gaps stay addressable and the
// skipped ids are dead.
func TestLoadWithIDsSparse(t *testing.T) {
	db, err := LoadWithIDs([][]float64{{0, 0}, {10, 10}}, []int64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if db.MaxID() != 8 {
		t.Fatalf("MaxID = %d, want 8", db.MaxID())
	}
	if db.Len() != 2 {
		t.Fatalf("Len = %d, want 2", db.Len())
	}
	if p, err := db.Point(7); err != nil || p[0] != 10 {
		t.Fatalf("Point(7) = %v, %v", p, err)
	}
	if _, err := db.Point(5); err == nil {
		t.Fatal("hole id 5 resolved")
	}

	if _, err := LoadWithIDs([][]float64{{0, 0}}, []int64{0, 1}); err == nil {
		t.Error("mismatched id count accepted")
	}
	if _, err := LoadWithIDs([][]float64{{0, 0}, {1, 1}}, []int64{2, 2}); err == nil {
		t.Error("duplicate ids accepted")
	}
	if _, err := LoadWithIDs([][]float64{{0, 0}}, []int64{-1}); err == nil {
		t.Error("negative id accepted")
	}
}

// TestApplyWithIDsLogReplay journals explicit-id batches and checks replay
// reproduces the exact id assignment, including holes.
func TestApplyWithIDsLogReplay(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "mut.log")
	snapPath := filepath.Join(dir, "snap.grdb")

	db, err := Load(gridPoints(16, 10))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SaveFile(snapPath); err != nil {
		t.Fatal(err)
	}
	if _, err := db.AttachMutationLog(logPath); err != nil {
		t.Fatal(err)
	}
	// Mixed history: sequential batch, explicit-id batch with a hole,
	// deletes against both kinds of id.
	if _, _, _, err := db.Apply([][]float64{{101, 101}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.ApplyWithIDs([][]float64{{201, 201}, {202, 202}}, []int64{30, 40}, []int64{0}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.ApplyWithIDs(nil, nil, []int64{30}); err != nil {
		t.Fatal(err)
	}
	wantEpoch := db.Epoch()
	if err := db.DetachMutationLog(); err != nil {
		t.Fatal(err)
	}

	re, err := RestoreFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := re.AttachMutationLog(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 3 {
		t.Fatalf("replayed %d batches, want 3", replayed)
	}
	if re.Epoch() != wantEpoch {
		t.Fatalf("epoch %d after replay, want %d", re.Epoch(), wantEpoch)
	}
	if re.MaxID() != db.MaxID() {
		t.Fatalf("MaxID %d after replay, want %d", re.MaxID(), db.MaxID())
	}
	for _, id := range []int64{16, 40} {
		p0, err0 := db.Point(id)
		p1, err1 := re.Point(id)
		if err0 != nil || err1 != nil || !reflect.DeepEqual(p0, p1) {
			t.Fatalf("id %d: %v/%v vs %v/%v", id, p0, err0, p1, err1)
		}
	}
	for _, id := range []int64{0, 30, 35} { // deleted, deleted, hole
		if _, err := re.Point(id); err == nil {
			t.Errorf("id %d live after replay", id)
		}
	}
	os.Remove(logPath)
}

// TestPlanRegion checks the exposed Phase-1 rectangle contains every answer
// and is usable from an empty planner DB.
func TestPlanRegion(t *testing.T) {
	pts := gridPoints(100, 5)
	db, err := Load(pts)
	if err != nil {
		t.Fatal(err)
	}
	spec := QuerySpec{
		Center: []float64{20, 25},
		Cov:    [][]float64{{40, 0}, {0, 25}},
		Delta:  10,
		Theta:  0.1,
	}
	lo, hi, empty, err := db.PlanRegion(spec)
	if err != nil {
		t.Fatal(err)
	}
	if empty {
		t.Fatal("plan unexpectedly empty")
	}
	res, err := db.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) == 0 {
		t.Fatal("test query returned no answers")
	}
	for _, id := range res.IDs {
		p, err := db.Point(id)
		if err != nil {
			t.Fatal(err)
		}
		for d := range p {
			if p[d] < lo[d] || p[d] > hi[d] {
				t.Fatalf("answer %d at %v outside plan region [%v, %v]", id, p, lo, hi)
			}
		}
	}

	// An empty DB of the right dim works as a pure planner.
	planner, err := Open(2)
	if err != nil {
		t.Fatal(err)
	}
	lo2, hi2, empty2, err := planner.PlanRegion(spec)
	if err != nil {
		t.Fatal(err)
	}
	if empty2 || !reflect.DeepEqual(lo, lo2) || !reflect.DeepEqual(hi, hi2) {
		t.Fatalf("planner region diverges: [%v %v] vs [%v %v]", lo, hi, lo2, hi2)
	}
}
