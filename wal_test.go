package gaussrange

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"gaussrange/internal/wal"
)

func walOpts() []Option { return []Option{WithSeed(7)} }

// applyOps drives one deterministic mutation sequence against db, returning
// the per-op (ids, epoch) trail for identity comparison.
type opTrail struct {
	IDs   []int64
	Epoch uint64
}

func runOps(t *testing.T, db *DB, seed int64, n int) []opTrail {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var trail []opTrail
	for i := 0; i < n; i++ {
		switch rng.Intn(3) {
		case 0: // insert batch
			k := 1 + rng.Intn(3)
			pts := make([][]float64, k)
			for j := range pts {
				pts[j] = []float64{rng.Float64() * 100, rng.Float64() * 100}
			}
			ids, _, epoch, err := db.Apply(pts, nil)
			if err != nil {
				t.Fatalf("op %d insert: %v", i, err)
			}
			trail = append(trail, opTrail{IDs: ids, Epoch: epoch})
		case 1: // delete (possibly dead id)
			id := rng.Int63n(db.MaxID() + 1)
			_, _, epoch, err := db.Apply(nil, []int64{id})
			if err != nil {
				t.Fatalf("op %d delete: %v", i, err)
			}
			trail = append(trail, opTrail{Epoch: epoch})
		case 2: // mixed batch
			pts := [][]float64{{rng.Float64() * 100, rng.Float64() * 100}}
			del := []int64{rng.Int63n(db.MaxID() + 1)}
			ids, _, epoch, err := db.Apply(pts, del)
			if err != nil {
				t.Fatalf("op %d mixed: %v", i, err)
			}
			trail = append(trail, opTrail{IDs: ids, Epoch: epoch})
		}
	}
	return trail
}

func dbFingerprint(t *testing.T, db *DB) string {
	t.Helper()
	out := fmt.Sprintf("epoch=%d len=%d maxid=%d;", db.Epoch(), db.Len(), db.MaxID())
	for id := int64(0); id < db.MaxID(); id++ {
		p, err := db.Point(id)
		if err != nil {
			out += fmt.Sprintf("%d:dead;", id)
			continue
		}
		out += fmt.Sprintf("%d:%v;", id, p)
	}
	return out
}

func TestWALGroupedCommitAndReplay(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(2, walOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AttachWAL(WALConfig{Dir: dir, CommitWindow: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	const writers = 16
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := db.Insert([]float64{float64(w), float64(i)}); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st, ok := db.WALStats()
	if !ok {
		t.Fatal("no wal stats")
	}
	if st.Store.Records == 0 || st.Batcher.Submissions != writers*10 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Batcher.Groups > st.Batcher.Submissions {
		t.Fatalf("more groups than submissions: %+v", st.Batcher)
	}
	want := dbFingerprint(t, db)
	if err := db.DetachWAL(); err != nil {
		t.Fatal(err)
	}

	// A fresh DB attaching the same directory replays to the same state.
	db2, err := Open(2, walOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := db2.AttachWAL(WALConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if replayed == 0 {
		t.Fatal("nothing replayed")
	}
	if got := dbFingerprint(t, db2); got != want {
		t.Fatalf("replay diverged:\n got %s\nwant %s", got, want)
	}
	db2.DetachWAL()
}

// TestWALSyncGroupedIdentity: the acceptance criterion's identity half — a
// deterministic single-writer op sequence yields byte-identical epochs, ids
// and answers whether it runs unjournaled, through the synchronous wal, or
// through the grouped pipeline; and a fresh replay of either wal matches too.
func TestWALSyncGroupedIdentity(t *testing.T) {
	const ops = 60
	build := func(attach func(*DB) error) (*DB, []opTrail) {
		db, err := Open(2, walOpts()...)
		if err != nil {
			t.Fatal(err)
		}
		if attach != nil {
			if err := attach(db); err != nil {
				t.Fatal(err)
			}
		}
		return db, runOps(t, db, 99, ops)
	}

	plain, trailPlain := build(nil)
	syncDir := t.TempDir()
	syncDB, trailSync := build(func(db *DB) error {
		_, err := db.AttachWAL(WALConfig{Dir: syncDir, Synchronous: true})
		return err
	})
	groupDir := t.TempDir()
	groupDB, trailGroup := build(func(db *DB) error {
		_, err := db.AttachWAL(WALConfig{Dir: groupDir})
		return err
	})

	if !reflect.DeepEqual(trailPlain, trailSync) {
		t.Fatalf("sync wal trail diverged from plain")
	}
	if !reflect.DeepEqual(trailPlain, trailGroup) {
		t.Fatalf("grouped wal trail diverged from plain (single writer must group 1:1)")
	}

	spec := QuerySpec{Center: []float64{50, 50}, Cov: [][]float64{{40, 0}, {0, 40}}, Delta: 20, Theta: 0.05}
	resPlain, err := plain.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	for name, db := range map[string]*DB{"sync": syncDB, "grouped": groupDB} {
		res, err := db.Query(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.IDs, resPlain.IDs) || res.Epoch != resPlain.Epoch {
			t.Fatalf("%s: answer diverged", name)
		}
	}
	syncDB.DetachWAL()
	groupDB.DetachWAL()

	for _, dir := range []string{syncDir, groupDir} {
		db, err := Open(2, walOpts()...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.AttachWAL(WALConfig{Dir: dir}); err != nil {
			t.Fatal(err)
		}
		res, err := db.Query(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.IDs, resPlain.IDs) || res.Epoch != resPlain.Epoch {
			t.Fatalf("replay of %s: answer diverged", dir)
		}
		db.DetachWAL()
	}
}

// TestWALCrashRecoveryProperty simulates the two crash points the issue names:
// (a) between fsync and epoch publish — the record is durable but was never
// acked/visible; replay must still apply it (it is a committed group), and
// (b) mid-segment append — the torn record must vanish. Either way the
// recovered database must equal a prefix of the committed groups, with
// contiguous epochs and sequential ids.
func TestWALCrashRecoveryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		dir := t.TempDir()
		db, err := Open(2, walOpts()...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.AttachWAL(WALConfig{Dir: dir, SegmentBytes: 512, Synchronous: true}); err != nil {
			t.Fatal(err)
		}
		nOps := 20 + rng.Intn(20)
		runOps(t, db, int64(1000+trial), nOps)
		finalEpoch := db.Epoch()
		if err := db.DetachWAL(); err != nil {
			t.Fatal(err)
		}

		if trial%2 == 0 {
			// Crash point (a): a group was staged, its record fsynced, but the
			// process died before publish/ack. On disk that is exactly "one
			// more valid record than the acked epochs".
			st, err := wal.OpenStore(dir, wal.StoreConfig{Dim: 2, SegmentBytes: 512})
			if err != nil {
				t.Fatal(err)
			}
			rec := wal.Record{
				Epoch:     finalEpoch + 1,
				Inserts:   [][]float64{{1, 2}},
				InsertIDs: []int64{db.MaxID()},
			}
			if err := st.Append(rec); err != nil {
				t.Fatal(err)
			}
			st.Close()
			finalEpoch++ // the group is durable, so recovery must include it
		} else {
			// Crash point (b): torn mid-segment append.
			names, err := filepath.Glob(filepath.Join(dir, "*.seg"))
			if err != nil || len(names) == 0 {
				t.Fatal("no segments")
			}
			last := names[len(names)-1]
			fi, _ := os.Stat(last)
			cut := 54 + rng.Int63n(fi.Size()-54+1)
			if err := os.Truncate(last, cut); err != nil {
				t.Fatal(err)
			}
		}

		rec, err := Open(2, walOpts()...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rec.AttachWAL(WALConfig{Dir: dir, SegmentBytes: 512}); err != nil {
			t.Fatalf("trial %d: recovery attach: %v", trial, err)
		}
		got := rec.Epoch()
		if trial%2 == 0 {
			if got != finalEpoch {
				t.Fatalf("trial %d: recovered epoch %d, want %d (durable unpublished group lost)", trial, got, finalEpoch)
			}
		} else if got > finalEpoch {
			t.Fatalf("trial %d: recovered epoch %d beyond committed %d (torn epoch surfaced)", trial, got, finalEpoch)
		}
		// Epochs are contiguous by construction of replay; ids must be a
		// gapless 0..MaxID-1 space of live-or-tombstoned slots.
		if rec.MaxID() < 0 {
			t.Fatalf("trial %d: negative MaxID", trial)
		}
		// The recovered DB must keep accepting writes at the recovered epoch.
		if _, err := rec.Insert([]float64{5, 5}); err != nil {
			t.Fatalf("trial %d: post-recovery insert: %v", trial, err)
		}
		if rec.Epoch() != got+1 {
			t.Fatalf("trial %d: post-recovery epoch %d, want %d", trial, rec.Epoch(), got+1)
		}
		rec.DetachWAL()
	}
}

// TestWALBadSubmissionFailsAlone: one invalid submission in a commit group
// must not poison its groupmates.
func TestWALBadSubmissionFailsAlone(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(2, walOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	// A long window so concurrent submissions land in one group.
	if _, err := db.AttachWAL(WALConfig{Dir: dir, CommitWindow: 50 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer db.DetachWAL()
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i == 3 {
				_, errs[i] = db.Insert([]float64{1}) // wrong dim
				return
			}
			_, errs[i] = db.Insert([]float64{float64(i), 0})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if i == 3 {
			if err == nil {
				t.Fatal("bad submission did not fail")
			}
			continue
		}
		if err != nil {
			t.Fatalf("good submission %d failed: %v", i, err)
		}
	}
	if db.Len() != 7 {
		t.Fatalf("Len = %d, want 7", db.Len())
	}
}

// TestWALExplicitIDsThroughPipeline: the router path (ApplyWithIDs) rides the
// pipeline and survives replay with the exact assignment.
func TestWALExplicitIDsThroughPipeline(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(2, walOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AttachWAL(WALConfig{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.ApplyWithIDs([][]float64{{1, 1}, {2, 2}}, []int64{5, 9}, nil); err != nil {
		t.Fatal(err)
	}
	ids, _, _, err := db.Apply([][]float64{{3, 3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ids[0] != 10 {
		t.Fatalf("sequential insert after explicit ids got id %d, want 10", ids[0])
	}
	want := dbFingerprint(t, db)
	db.DetachWAL()

	db2, err := Open(2, walOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db2.AttachWAL(WALConfig{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	defer db2.DetachWAL()
	if got := dbFingerprint(t, db2); got != want {
		t.Fatalf("explicit-id replay diverged:\n got %s\nwant %s", got, want)
	}
}

func TestWALMutuallyExclusiveWithMutationLog(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AttachWAL(WALConfig{Dir: filepath.Join(dir, "wal")}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.AttachMutationLog(filepath.Join(dir, "mut.log")); err == nil {
		t.Fatal("mutation log attached over a wal")
	}
	if _, err := db.AttachWAL(WALConfig{Dir: filepath.Join(dir, "wal2")}); err == nil {
		t.Fatal("second wal attached")
	}
	db.DetachWAL()

	if _, err := db.AttachMutationLog(filepath.Join(dir, "mut.log")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.AttachWAL(WALConfig{Dir: filepath.Join(dir, "wal3")}); err == nil {
		t.Fatal("wal attached over a mutation log")
	}
	db.DetachMutationLog()
}

// TestWALDetachDrains: DetachWAL must commit every queued submission before
// returning — the graceful-drain contract prqserved's SIGTERM path relies on.
// The durability contract, stated race-immune: an Insert acked at epoch E
// while the wal was attached must be present after a fresh replay that
// reaches epoch ≥ E. (A racing writer that lands after the detach runs
// unjournaled and acks at an epoch beyond the log, which the check skips.)
func TestWALDetachDrains(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(2, walOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AttachWAL(WALConfig{Dir: dir, CommitWindow: 20 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	type ack struct {
		id    int64
		epoch uint64
		val   []float64
	}
	var wg sync.WaitGroup
	const n = 24
	acks := make(chan ack, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			val := []float64{float64(i), 1}
			ids, _, epoch, err := db.Apply([][]float64{val}, nil)
			if err == nil {
				acks <- ack{id: ids[0], epoch: epoch, val: val}
			}
		}(i)
	}
	// Detach while writers are in flight: each Apply either committed
	// durably or returned an error — never a silent loss.
	time.Sleep(5 * time.Millisecond)
	if err := db.DetachWAL(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(acks)

	db2, err := Open(2, walOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db2.AttachWAL(WALConfig{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	defer db2.DetachWAL()
	checked := 0
	for a := range acks {
		if a.epoch > db2.Epoch() {
			continue // acked after detach, outside the log by construction
		}
		p, err := db2.Point(a.id)
		if err != nil {
			t.Fatalf("acked insert id %d (epoch %d ≤ replayed %d) lost: %v", a.id, a.epoch, db2.Epoch(), err)
		}
		if !reflect.DeepEqual(p, a.val) {
			t.Fatalf("acked insert id %d replayed as %v, want %v", a.id, p, a.val)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no acked insert fell inside the replayed log; drain untested")
	}
}
