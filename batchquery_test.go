package gaussrange

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// randCov2 builds a random 2×2 SPD covariance with paper-scale variances.
func randCov2(rng *rand.Rand) [][]float64 {
	a := 20 + 60*rng.Float64()
	b := 20 + 60*rng.Float64()
	c := (2*rng.Float64() - 1) * 0.8 * math.Sqrt(a*b)
	return [][]float64{{a, c}, {c, b}}
}

// TestSharedBatchQueryIdentity is the public batch-vs-serial property: across
// random (Σ, δ, θ, seed) shapes and batch sizes, a shared-batch DB's
// QueryBatch answers must be byte-identical to (a) the same DB's per-query
// QueryCtx answers and (b) the shared-early kernel's answers under the same
// seed — for every member, at several worker counts.
func TestSharedBatchQueryIdentity(t *testing.T) {
	pts := gridPoints(2500, 20)
	rng := rand.New(rand.NewSource(71))
	const samples = 20000
	ctx := context.Background()

	for trial := 0; trial < 3; trial++ {
		cov := randCov2(rng)
		delta := 15 + 25*rng.Float64()
		var theta float64
		if trial%2 == 0 {
			theta = 0.005 + 0.1*rng.Float64()
		} else {
			// Exactly attainable ratio: hit counts can land on the threshold.
			theta = float64(1+rng.Intn(samples/50)) / float64(samples)
		}
		seed := rng.Uint64()

		batchDB, err := Load(pts, WithMonteCarlo(samples), WithSeed(seed), WithPhase3Kernel(KernelSharedBatch))
		if err != nil {
			t.Fatal(err)
		}
		earlyDB, err := Load(pts, WithMonteCarlo(samples), WithSeed(seed), WithPhase3Kernel(KernelSharedEarly))
		if err != nil {
			t.Fatal(err)
		}

		for _, batch := range []int{1, 2, 7, 16} {
			specs := make([]QuerySpec, batch)
			for i := range specs {
				specs[i] = QuerySpec{
					Center: []float64{100 + 800*rng.Float64(), 100 + 800*rng.Float64()},
					Cov:    cov,
					Delta:  delta,
					Theta:  theta,
				}
			}
			for _, workers := range []int{1, 4} {
				got, err := batchDB.QueryBatch(ctx, specs, workers)
				if err != nil {
					t.Fatalf("trial=%d batch=%d workers=%d: %v", trial, batch, workers, err)
				}
				for i := range specs {
					want, err := batchDB.QueryCtx(ctx, specs[i])
					if err != nil {
						t.Fatal(err)
					}
					early, err := earlyDB.QueryCtx(ctx, specs[i])
					if err != nil {
						t.Fatal(err)
					}
					if !sameIDs(got[i].IDs, want.IDs) {
						t.Fatalf("trial=%d batch=%d workers=%d member %d: batched %v != per-query %v",
							trial, batch, workers, i, got[i].IDs, want.IDs)
					}
					if !sameIDs(got[i].IDs, early.IDs) {
						t.Fatalf("trial=%d batch=%d workers=%d member %d: batched %v != shared-early %v",
							trial, batch, workers, i, got[i].IDs, early.IDs)
					}
					if got[i].Stats.BatchQueries != batch {
						t.Errorf("member %d: BatchQueries = %d, want %d", i, got[i].Stats.BatchQueries, batch)
					}
				}
				groups := 0
				for i := range got {
					groups += got[i].Stats.BatchGroups
				}
				if groups != 1 {
					t.Errorf("trial=%d batch=%d: BatchGroups sums to %d, want 1 (one shape)", trial, batch, groups)
				}
			}
		}
	}
}

// TestSharedBatchGrouping: a batch mixing two query shapes must split into
// two coalesced groups — results still align with specs, every member
// reports its group's size, and exactly one member per group carries
// BatchGroups.
func TestSharedBatchGrouping(t *testing.T) {
	pts := gridPoints(2500, 20)
	db, err := Load(pts, WithMonteCarlo(20000), WithSeed(7), WithPhase3Kernel(KernelSharedBatch))
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]QuerySpec, 12)
	for i := range specs {
		specs[i] = QuerySpec{
			Center: []float64{200 + 60*float64(i), 500},
			Cov:    paperCov(10),
			Delta:  25,
			Theta:  0.01,
		}
		if i%2 == 1 {
			specs[i].Delta = 40 // second shape, interleaved
		}
	}
	got, err := db.QueryBatch(context.Background(), specs, 4)
	if err != nil {
		t.Fatal(err)
	}
	groups := 0
	for i := range got {
		if got[i].Stats.BatchQueries != 6 {
			t.Errorf("member %d: BatchQueries = %d, want 6", i, got[i].Stats.BatchQueries)
		}
		groups += got[i].Stats.BatchGroups
		want, err := db.QueryCtx(context.Background(), specs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(got[i].IDs, want.IDs) {
			t.Errorf("member %d: batched IDs differ from per-query", i)
		}
	}
	if groups != 2 {
		t.Errorf("BatchGroups sums to %d, want 2 (two shapes)", groups)
	}

	// Hit the plan-cache fast path on a repeat batch: same shapes again.
	if _, err := db.QueryBatch(context.Background(), specs, 4); err != nil {
		t.Fatal(err)
	}
	if hits, _ := db.PlanCacheStats(); hits == 0 {
		t.Error("repeat batch never hit the plan cache")
	}
}

// TestSharedBatchCancellation: a cancelled context aborts the coalesced path
// with ctx.Err(), and error specs surface with their index.
func TestSharedBatchCancellation(t *testing.T) {
	pts := gridPoints(400, 20)
	db, err := Load(pts, WithMonteCarlo(5000), WithSeed(7), WithPhase3Kernel(KernelSharedBatch))
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]QuerySpec, 8)
	for i := range specs {
		specs[i] = QuerySpec{Center: []float64{100, 100}, Cov: paperCov(10), Delta: 25, Theta: 0.01}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryBatch(ctx, specs, 4); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled coalesced batch error = %v, want context.Canceled", err)
	}

	bad := specs
	bad[3].Cov = [][]float64{{1, 0}, {0, -1}}
	if _, err := db.QueryBatch(context.Background(), bad, 4); err == nil {
		t.Error("indefinite covariance accepted by coalesced batch")
	}
}

func sameIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
