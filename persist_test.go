package gaussrange

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

func TestSaveRestoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	points := make([][]float64, 5000)
	for i := range points {
		points[i] = []float64{rng.Float64() * 1000, rng.Float64() * 1000}
	}
	db, err := Load(points)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() || back.Dim() != db.Dim() {
		t.Fatalf("restored Len/Dim = %d/%d", back.Len(), back.Dim())
	}
	// Identical query results.
	spec := QuerySpec{Center: []float64{500, 500}, Cov: paperCov(10), Delta: 25, Theta: 0.01}
	a, err := db.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.IDs) != len(b.IDs) {
		t.Fatalf("restored query %d answers vs %d", len(b.IDs), len(a.IDs))
	}
	for i := range a.IDs {
		if a.IDs[i] != b.IDs[i] {
			t.Fatal("restored answers differ")
		}
	}
	// Point payloads preserved bit-exactly.
	for _, id := range []int64{0, 2500, 4999} {
		p1, _ := db.Point(id)
		p2, _ := back.Point(id)
		if p1[0] != p2[0] || p1[1] != p2[1] {
			t.Fatalf("point %d differs after restore", id)
		}
	}
}

func TestSaveRestoreFile(t *testing.T) {
	db, err := Load([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "db.snap")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := RestoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Errorf("restored Len = %d", back.Len())
	}
	if _, err := RestoreFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRestoreEmptyDatabase(t *testing.T) {
	db, err := Open(3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 0 || back.Dim() != 3 {
		t.Errorf("restored empty db Len/Dim = %d/%d", back.Len(), back.Dim())
	}
}

func TestRestoreCorruption(t *testing.T) {
	db, err := Load([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Bad magic.
	bad := append([]byte(nil), good...)
	bad[0] = 'X'
	if _, err := Restore(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// Flipped payload byte → checksum mismatch.
	bad = append([]byte(nil), good...)
	bad[len(bad)-10] ^= 0xFF
	if _, err := Restore(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("corrupted payload: %v", err)
	}
	// Truncated stream.
	if _, err := Restore(bytes.NewReader(good[:len(good)-12])); err == nil {
		t.Error("truncated snapshot accepted")
	}
	// Empty stream.
	if _, err := Restore(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestQueryMatchesAndTopK(t *testing.T) {
	db, err := Load(gridPoints(10000, 10))
	if err != nil {
		t.Fatal(err)
	}
	spec := QuerySpec{Center: []float64{500, 500}, Cov: paperCov(10), Delta: 25, Theta: 0.01}
	matches, err := db.QueryMatches(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != len(res.IDs) {
		t.Fatalf("QueryMatches %d vs Query %d", len(matches), len(res.IDs))
	}
	for i, m := range matches {
		if m.Probability < spec.Theta {
			t.Fatalf("match %d has probability %g below θ", i, m.Probability)
		}
		if i > 0 && m.Probability > matches[i-1].Probability {
			t.Fatal("matches not sorted by descending probability")
		}
		// Cross-check against the exact point probability.
		p, err := db.QueryProb(spec, m.ID)
		if err != nil {
			t.Fatal(err)
		}
		if p != m.Probability {
			t.Fatalf("match probability %g differs from QueryProb %g", m.Probability, p)
		}
	}

	top, err := db.QueryTopK(spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 5 {
		t.Fatalf("TopK returned %d", len(top))
	}
	for i := range top {
		if top[i] != matches[i] {
			t.Fatal("TopK disagrees with QueryMatches prefix")
		}
	}
	if _, err := db.QueryTopK(spec, 0); err == nil {
		t.Error("k=0 accepted")
	}
	// k larger than the answer set returns everything.
	all, err := db.QueryTopK(spec, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(matches) {
		t.Errorf("oversized k returned %d of %d", len(all), len(matches))
	}
}

func TestQueryFunc(t *testing.T) {
	db, err := Load(gridPoints(10000, 10))
	if err != nil {
		t.Fatal(err)
	}
	spec := QuerySpec{Center: []float64{500, 500}, Cov: paperCov(10), Delta: 25, Theta: 0.01}
	want, err := db.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool)
	if err := db.QueryFunc(spec, func(id int64) bool {
		seen[id] = true
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(want.IDs) {
		t.Fatalf("streamed %d, want %d", len(seen), len(want.IDs))
	}
	for _, id := range want.IDs {
		if !seen[id] {
			t.Fatalf("id %d missing from stream", id)
		}
	}
	// Early stop.
	n := 0
	if err := db.QueryFunc(spec, func(int64) bool { n++; return false }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("early stop streamed %d", n)
	}
	// Validation error propagates.
	bad := spec
	bad.Theta = 0
	if err := db.QueryFunc(bad, func(int64) bool { return true }); err == nil {
		t.Error("bad spec accepted")
	}
}
