package gaussrange

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"

	"gaussrange/internal/core"
	"gaussrange/internal/rtree"
	"gaussrange/internal/vecmat"
)

// persistMagicV1 identifies snapshot format version 1: dense ids 0..n−1, no
// epoch. Still readable; restored databases start at epoch 1.
var persistMagicV1 = [6]byte{'G', 'R', 'D', 'B', 'v', '1'}

// persistMagicV2 identifies snapshot format version 2: epoch-stamped, with
// explicit (id, point) pairs so deleted ids survive a save/restore cycle as
// holes and identifiers stay stable across restarts.
var persistMagicV2 = [6]byte{'G', 'R', 'D', 'B', 'v', '2'}

// Save writes a snapshot of one pinned epoch to w: the epoch number, the id
// space bound, every live (id, point) pair in ascending id order, and a CRC.
// Restore rebuilds the R*-tree deterministically with STR bulk loading,
// which is faster than serializing tree pages and immune to structural
// format drift. Save never blocks mutations (it reads an immutable
// snapshot); batches published after the pin are not included — pair Save
// with a mutation log to cover them.
func (db *DB) Save(w io.Writer) error {
	snap := db.idx.Current()
	bw := bufio.NewWriter(w)
	crc := crc32.NewIEEE()
	out := io.MultiWriter(bw, crc)

	if _, err := out.Write(persistMagicV2[:]); err != nil {
		return fmt.Errorf("gaussrange: writing snapshot header: %w", err)
	}
	if err := binary.Write(out, binary.LittleEndian, uint32(db.dim)); err != nil {
		return err
	}
	if err := binary.Write(out, binary.LittleEndian, snap.Epoch()); err != nil {
		return err
	}
	if err := binary.Write(out, binary.LittleEndian, uint64(snap.MaxID())); err != nil {
		return err
	}
	if err := binary.Write(out, binary.LittleEndian, uint64(snap.Len())); err != nil {
		return err
	}
	buf := make([]byte, 8)
	var werr error
	snap.Range(func(id int64, p vecmat.Vector) bool {
		binary.LittleEndian.PutUint64(buf, uint64(id))
		if _, err := out.Write(buf); err != nil {
			werr = err
			return false
		}
		for _, x := range p {
			binary.LittleEndian.PutUint64(buf, math.Float64bits(x))
			if _, err := out.Write(buf); err != nil {
				werr = err
				return false
			}
		}
		return true
	})
	if werr != nil {
		return werr
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

// SaveFile writes a snapshot to the given path.
func (db *DB) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := db.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Restore reads a snapshot produced by Save (either format version) and
// rebuilds the database at the stored epoch. Options apply as in Load.
func Restore(r io.Reader, opts ...Option) (*DB, error) {
	br := bufio.NewReader(r)
	crc := crc32.NewIEEE()
	in := io.TeeReader(br, crc)

	var magic [6]byte
	if _, err := io.ReadFull(in, magic[:]); err != nil {
		return nil, fmt.Errorf("gaussrange: reading snapshot header: %w", err)
	}
	switch magic {
	case persistMagicV1:
		return restoreV1(br, in, crc, opts...)
	case persistMagicV2:
		return restoreV2(br, in, crc, opts...)
	default:
		return nil, errors.New("gaussrange: not a gaussrange snapshot (bad magic)")
	}
}

// restoreV1 reads the legacy dense format: dim, count, count·dim floats, CRC.
func restoreV1(br *bufio.Reader, in io.Reader, crc hash.Hash32, opts ...Option) (*DB, error) {
	var dim uint32
	if err := binary.Read(in, binary.LittleEndian, &dim); err != nil {
		return nil, err
	}
	var count uint64
	if err := binary.Read(in, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	if dim == 0 || dim > 1<<16 {
		return nil, fmt.Errorf("gaussrange: snapshot dimension %d out of range", dim)
	}
	const maxPoints = 1 << 33
	if count > maxPoints {
		return nil, fmt.Errorf("gaussrange: snapshot claims %d points (limit %d)", count, int64(maxPoints))
	}

	points := make([][]float64, count)
	buf := make([]byte, 8)
	for i := range points {
		p := make([]float64, dim)
		for j := range p {
			if _, err := io.ReadFull(in, buf); err != nil {
				return nil, fmt.Errorf("gaussrange: truncated snapshot at point %d: %w", i, err)
			}
			p[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
		}
		points[i] = p
	}
	if err := checkSnapshotCRC(br, crc); err != nil {
		return nil, err
	}
	if count == 0 {
		return Open(int(dim), opts...)
	}
	return Load(points, opts...)
}

// restoreV2 reads the epoch-stamped format: dim, epoch, id-space bound, live
// count, live (id, point) pairs in ascending id order, CRC. Deleted ids come
// back as holes, so identifiers assigned after the restore never collide
// with ids from before the save.
func restoreV2(br *bufio.Reader, in io.Reader, crc hash.Hash32, opts ...Option) (*DB, error) {
	var dim uint32
	if err := binary.Read(in, binary.LittleEndian, &dim); err != nil {
		return nil, err
	}
	var epoch, slots, live uint64
	if err := binary.Read(in, binary.LittleEndian, &epoch); err != nil {
		return nil, err
	}
	if err := binary.Read(in, binary.LittleEndian, &slots); err != nil {
		return nil, err
	}
	if err := binary.Read(in, binary.LittleEndian, &live); err != nil {
		return nil, err
	}
	if dim == 0 || dim > 1<<16 {
		return nil, fmt.Errorf("gaussrange: snapshot dimension %d out of range", dim)
	}
	const maxPoints = 1 << 33
	if slots > maxPoints || live > slots {
		return nil, fmt.Errorf("gaussrange: snapshot claims %d live of %d ids (limit %d)", live, slots, int64(maxPoints))
	}

	points := make([]vecmat.Vector, slots)
	buf := make([]byte, 8)
	prev := int64(-1)
	for i := uint64(0); i < live; i++ {
		if _, err := io.ReadFull(in, buf); err != nil {
			return nil, fmt.Errorf("gaussrange: truncated snapshot at record %d: %w", i, err)
		}
		id := int64(binary.LittleEndian.Uint64(buf))
		if id <= prev || id >= int64(slots) {
			return nil, fmt.Errorf("gaussrange: snapshot id %d out of order or range", id)
		}
		prev = id
		p := make(vecmat.Vector, dim)
		for j := range p {
			if _, err := io.ReadFull(in, buf); err != nil {
				return nil, fmt.Errorf("gaussrange: truncated snapshot at record %d: %w", i, err)
			}
			p[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
		}
		points[id] = p
	}
	if err := checkSnapshotCRC(br, crc); err != nil {
		return nil, err
	}
	return restoreDB(points, epoch, int(dim), opts...)
}

// checkSnapshotCRC verifies the trailing checksum against the bytes read.
func checkSnapshotCRC(br *bufio.Reader, crc hash.Hash32) error {
	sum := crc.Sum32()
	var stored uint32
	if err := binary.Read(br, binary.LittleEndian, &stored); err != nil {
		return fmt.Errorf("gaussrange: reading snapshot checksum: %w", err)
	}
	if stored != sum {
		return fmt.Errorf("gaussrange: snapshot checksum mismatch (stored %08x, computed %08x)", stored, sum)
	}
	return nil
}

// restoreDB builds a DB from an id-addressed point slice (nil = deleted) at
// the given epoch.
func restoreDB(points []vecmat.Vector, epoch uint64, dim int, opts ...Option) (*DB, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	idx, err := core.RestoreIndex(points, epoch, dim, rtree.WithPageSize(o.pageSize))
	if err != nil {
		return nil, err
	}
	idx.SetRebuildStrategy(core.RebuildStrategy(o.rebuild))
	return &DB{idx: idx, dim: dim, options: o, plans: newPlanCache(o.planCacheSize)}, nil
}

// RestoreFile reads a snapshot from the given path.
func RestoreFile(path string, opts ...Option) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Restore(f, opts...)
}

// Match is one probability-annotated query answer.
type Match struct {
	ID          int64
	Probability float64
}

// QueryMatches runs the query and returns probability-annotated answers,
// best first. Unlike Query, every answer's probability is computed (even
// those the BF bound could accept outright).
func (db *DB) QueryMatches(spec QuerySpec) ([]Match, error) {
	q, strat, err := db.compile(spec)
	if err != nil {
		return nil, err
	}
	engine, err := db.engine()
	if err != nil {
		return nil, err
	}
	res, _, err := engine.SearchProbs(q, strat)
	if err != nil {
		return nil, err
	}
	out := make([]Match, len(res))
	for i, m := range res {
		out[i] = Match{ID: m.ID, Probability: m.Probability}
	}
	return out, nil
}

// QueryTopK returns at most k answers with the highest qualification
// probabilities among those clearing Theta, best first.
func (db *DB) QueryTopK(spec QuerySpec, k int) ([]Match, error) {
	if k <= 0 {
		return nil, fmt.Errorf("gaussrange: k must be positive, got %d", k)
	}
	matches, err := db.QueryMatches(spec)
	if err != nil {
		return nil, err
	}
	if len(matches) > k {
		matches = matches[:k]
	}
	return matches, nil
}

// QueryFunc streams qualifying point ids to fn as they are found, without
// materializing the result slice — useful for very large answer sets.
// Returning false from fn stops the query early. IDs arrive unsorted.
func (db *DB) QueryFunc(spec QuerySpec, fn func(id int64) bool) error {
	q, strat, err := db.compile(spec)
	if err != nil {
		return err
	}
	engine, err := db.engine()
	if err != nil {
		return err
	}
	_, err = engine.SearchFunc(q, strat, fn)
	return err
}
