package gaussrange

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
)

// persistMagic identifies the on-disk snapshot format, version 1.
var persistMagic = [6]byte{'G', 'R', 'D', 'B', 'v', '1'}

// Save writes a snapshot of the database's points to w. The snapshot stores
// the raw point data plus a CRC; Restore rebuilds the R*-tree
// deterministically with STR bulk loading, which is faster than serializing
// tree pages and immune to structural format drift.
func (db *DB) Save(w io.Writer) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	bw := bufio.NewWriter(w)
	crc := crc32.NewIEEE()
	out := io.MultiWriter(bw, crc)

	if _, err := out.Write(persistMagic[:]); err != nil {
		return fmt.Errorf("gaussrange: writing snapshot header: %w", err)
	}
	if err := binary.Write(out, binary.LittleEndian, uint32(db.dim)); err != nil {
		return err
	}
	if err := binary.Write(out, binary.LittleEndian, uint64(db.Len())); err != nil {
		return err
	}
	buf := make([]byte, 8)
	for id := int64(0); id < int64(db.Len()); id++ {
		p, err := db.idx.Point(id)
		if err != nil {
			return err
		}
		for _, x := range p {
			binary.LittleEndian.PutUint64(buf, math.Float64bits(x))
			if _, err := out.Write(buf); err != nil {
				return err
			}
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

// SaveFile writes a snapshot to the given path.
func (db *DB) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := db.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Restore reads a snapshot produced by Save and rebuilds the database.
// Options apply as in Load.
func Restore(r io.Reader, opts ...Option) (*DB, error) {
	br := bufio.NewReader(r)
	crc := crc32.NewIEEE()
	in := io.TeeReader(br, crc)

	var magic [6]byte
	if _, err := io.ReadFull(in, magic[:]); err != nil {
		return nil, fmt.Errorf("gaussrange: reading snapshot header: %w", err)
	}
	if magic != persistMagic {
		return nil, errors.New("gaussrange: not a gaussrange snapshot (bad magic)")
	}
	var dim uint32
	if err := binary.Read(in, binary.LittleEndian, &dim); err != nil {
		return nil, err
	}
	var count uint64
	if err := binary.Read(in, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	if dim == 0 || dim > 1<<16 {
		return nil, fmt.Errorf("gaussrange: snapshot dimension %d out of range", dim)
	}
	const maxPoints = 1 << 33
	if count > maxPoints {
		return nil, fmt.Errorf("gaussrange: snapshot claims %d points (limit %d)", count, int64(maxPoints))
	}

	points := make([][]float64, count)
	buf := make([]byte, 8)
	for i := range points {
		p := make([]float64, dim)
		for j := range p {
			if _, err := io.ReadFull(in, buf); err != nil {
				return nil, fmt.Errorf("gaussrange: truncated snapshot at point %d: %w", i, err)
			}
			p[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
		}
		points[i] = p
	}
	sum := crc.Sum32()
	var stored uint32
	if err := binary.Read(br, binary.LittleEndian, &stored); err != nil {
		return nil, fmt.Errorf("gaussrange: reading snapshot checksum: %w", err)
	}
	if stored != sum {
		return nil, fmt.Errorf("gaussrange: snapshot checksum mismatch (stored %08x, computed %08x)", stored, sum)
	}
	if count == 0 {
		return Open(int(dim), opts...)
	}
	return Load(points, opts...)
}

// RestoreFile reads a snapshot from the given path.
func RestoreFile(path string, opts ...Option) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Restore(f, opts...)
}

// Match is one probability-annotated query answer.
type Match struct {
	ID          int64
	Probability float64
}

// QueryMatches runs the query and returns probability-annotated answers,
// best first. Unlike Query, every answer's probability is computed (even
// those the BF bound could accept outright).
func (db *DB) QueryMatches(spec QuerySpec) ([]Match, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	q, strat, err := db.compile(spec)
	if err != nil {
		return nil, err
	}
	engine, err := db.engine()
	if err != nil {
		return nil, err
	}
	res, _, err := engine.SearchProbs(q, strat)
	if err != nil {
		return nil, err
	}
	out := make([]Match, len(res))
	for i, m := range res {
		out[i] = Match{ID: m.ID, Probability: m.Probability}
	}
	return out, nil
}

// QueryTopK returns at most k answers with the highest qualification
// probabilities among those clearing Theta, best first.
func (db *DB) QueryTopK(spec QuerySpec, k int) ([]Match, error) {
	if k <= 0 {
		return nil, fmt.Errorf("gaussrange: k must be positive, got %d", k)
	}
	matches, err := db.QueryMatches(spec)
	if err != nil {
		return nil, err
	}
	if len(matches) > k {
		matches = matches[:k]
	}
	return matches, nil
}

// QueryFunc streams qualifying point ids to fn as they are found, without
// materializing the result slice — useful for very large answer sets.
// Returning false from fn stops the query early. IDs arrive unsorted.
func (db *DB) QueryFunc(spec QuerySpec, fn func(id int64) bool) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	q, strat, err := db.compile(spec)
	if err != nil {
		return err
	}
	engine, err := db.engine()
	if err != nil {
		return err
	}
	_, err = engine.SearchFunc(q, strat, fn)
	return err
}
