package gaussrange

import (
	"context"
	"errors"
	"testing"
	"time"
)

// batchDB builds a 2-D grid database for the QueryCtx/QueryBatch tests.
func batchDB(t *testing.T, opts ...Option) *DB {
	t.Helper()
	db, err := Load(gridPoints(2500, 10), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func batchSpecs(n int) []QuerySpec {
	specs := make([]QuerySpec, n)
	for i := range specs {
		specs[i] = QuerySpec{
			Center: []float64{100 + 7*float64(i), 120 + 5*float64(i%9)},
			Cov:    paperCov(10),
			Delta:  25,
			Theta:  0.01,
		}
	}
	return specs
}

func TestQueryCtx(t *testing.T) {
	db := batchDB(t)
	spec := batchSpecs(1)[0]

	want, err := db.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.QueryCtx(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.IDs) != len(want.IDs) {
		t.Fatalf("QueryCtx returned %d ids, Query returned %d", len(got.IDs), len(want.IDs))
	}
	for i := range got.IDs {
		if got.IDs[i] != want.IDs[i] {
			t.Fatal("QueryCtx ids differ from Query")
		}
	}

	// A cancelled context aborts with ctx.Err().
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryCtx(ctx, spec); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled QueryCtx error = %v, want context.Canceled", err)
	}
	// And an already-expired timeout behaves the same way.
	ctx, cancel = context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	if _, err := db.QueryCtx(ctx, spec); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired QueryCtx error = %v, want context.DeadlineExceeded", err)
	}
}

func TestQueryBatchMatchesSerial(t *testing.T) {
	db := batchDB(t)
	specs := batchSpecs(24)

	want := make([]*Result, len(specs))
	for i, spec := range specs {
		r, err := db.Query(spec)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}

	for _, workers := range []int{1, 2, 4, 8, 100} {
		got, err := db.QueryBatch(context.Background(), specs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(specs) {
			t.Fatalf("workers=%d: %d results for %d specs", workers, len(got), len(specs))
		}
		for i := range got {
			if len(got[i].IDs) != len(want[i].IDs) {
				t.Fatalf("workers=%d: spec %d: %d ids, want %d",
					workers, i, len(got[i].IDs), len(want[i].IDs))
			}
			for j := range got[i].IDs {
				if got[i].IDs[j] != want[i].IDs[j] {
					t.Fatalf("workers=%d: spec %d ids differ", workers, i)
				}
			}
		}
	}

	// Empty batch is a no-op.
	if res, err := db.QueryBatch(context.Background(), nil, 4); err != nil || res != nil {
		t.Errorf("empty batch = (%v, %v), want (nil, nil)", res, err)
	}
}

func TestQueryBatchErrorPropagation(t *testing.T) {
	db := batchDB(t)
	specs := batchSpecs(8)
	specs[5].Cov = [][]float64{{1, 0}, {0, -1}} // indefinite covariance

	for _, workers := range []int{1, 4} {
		_, err := db.QueryBatch(context.Background(), specs, workers)
		if err == nil {
			t.Fatalf("workers=%d: bad spec accepted", workers)
		}
	}

	// Cancellation wins over spec errors and aborts promptly.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryBatch(ctx, batchSpecs(50), 4); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled batch error = %v, want context.Canceled", err)
	}
}

func TestPlanCacheStats(t *testing.T) {
	db := batchDB(t)
	specs := batchSpecs(10) // one covariance shape, ten centers

	for _, spec := range specs {
		if _, err := db.Query(spec); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := db.PlanCacheStats()
	if misses != 1 {
		t.Errorf("misses = %d, want 1 (one shared query shape)", misses)
	}
	if hits != uint64(len(specs)-1) {
		t.Errorf("hits = %d, want %d", hits, len(specs)-1)
	}

	// A different δ is a different plan.
	other := specs[0]
	other.Delta = 40
	if _, err := db.Query(other); err != nil {
		t.Fatal(err)
	}
	if _, misses = db.PlanCacheStats(); misses != 2 {
		t.Errorf("misses after new shape = %d, want 2", misses)
	}

	// A disabled cache misses every time and still answers correctly.
	cold := batchDB(t, WithPlanCacheSize(0))
	for _, spec := range specs[:3] {
		if _, err := cold.Query(spec); err != nil {
			t.Fatal(err)
		}
	}
	if h, m := cold.PlanCacheStats(); h != 0 || m != 0 {
		// cap-0 caches count nothing: get() short-circuits before the counters.
		t.Errorf("disabled cache stats = (%d, %d), want (0, 0)", h, m)
	}
	if _, err := Load(gridPoints(100, 10), WithPlanCacheSize(-1)); err == nil {
		t.Error("negative cache size accepted")
	}
}
