// Package gaussrange implements probabilistic spatial range queries for
// Gaussian-based imprecise query objects, reproducing Ishikawa, Iijima & Yu,
// "Spatial Range Querying for Gaussian-Based Imprecise Query Objects"
// (ICDE 2009).
//
// A database holds exact d-dimensional points in an R*-tree. A query object
// has an uncertain location modeled as a Gaussian N(q, Σ); the query
// PRQ(q, Σ, δ, θ) returns every point whose probability of lying within
// distance δ of the query object is at least θ:
//
//	db, _ := gaussrange.Load(points)
//	res, _ := db.Query(gaussrange.QuerySpec{
//	    Center: []float64{500, 500},
//	    Cov:    [][]float64{{70, 34.6}, {34.6, 30}},
//	    Delta:  25,
//	    Theta:  0.01,
//	})
//
// Query processing runs the paper's three-phase pipeline: R*-tree search
// over a conservative rectangle, candidate filtering by the RR / OR / BF
// strategies (configurable; default ALL), and qualification-probability
// computation by Monte Carlo importance sampling (the paper's method) or an
// exact Ruben-series evaluator (this library's extension, default).
package gaussrange

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"gaussrange/internal/core"
	"gaussrange/internal/gauss"
	"gaussrange/internal/geom"
	"gaussrange/internal/mc"
	"gaussrange/internal/rtree"
	"gaussrange/internal/vecmat"
)

// DB is a queryable collection of exact points. All methods are safe for
// concurrent use: queries take a shared lock and Insert an exclusive one.
type DB struct {
	mu      sync.RWMutex
	idx     *core.Index
	dim     int
	options options
}

type options struct {
	pageSize    int
	mcSamples   int // 0 selects the exact evaluator (unless adaptive is set)
	adaptiveMC  bool
	seed        uint64
	useCatalogs bool
}

// Option configures Open and Load.
type Option func(*options) error

// WithPageSize sets the simulated R*-tree page size in bytes (default 1024,
// the paper's setting).
func WithPageSize(bytes int) Option {
	return func(o *options) error {
		if bytes < 128 {
			return fmt.Errorf("gaussrange: page size %d too small", bytes)
		}
		o.pageSize = bytes
		return nil
	}
}

// WithMonteCarlo selects the paper's importance-sampling evaluator with the
// given per-object sample count (the paper uses 100 000). Without this
// option the exact Ruben-series evaluator is used.
func WithMonteCarlo(samples int) Option {
	return func(o *options) error {
		if samples <= 0 {
			return fmt.Errorf("gaussrange: sample count must be positive, got %d", samples)
		}
		o.mcSamples = samples
		return nil
	}
}

// WithAdaptiveMonteCarlo selects sequential Monte Carlo with early
// stopping: candidates clearly above or below θ are decided with a few
// hundred samples, and only borderline ones consume the full budget of
// `maxSamples`. In the paper's workloads this cuts Phase-3 sampling by more
// than an order of magnitude at equal answer quality.
func WithAdaptiveMonteCarlo(maxSamples int) Option {
	return func(o *options) error {
		if maxSamples < 500 {
			return fmt.Errorf("gaussrange: adaptive budget %d too small (min 500)", maxSamples)
		}
		o.mcSamples = maxSamples
		o.adaptiveMC = true
		return nil
	}
}

// WithSeed fixes the random stream of the Monte Carlo evaluator.
func WithSeed(seed uint64) Option {
	return func(o *options) error { o.seed = seed; return nil }
}

// WithCatalogs switches rθ and BF-radius derivation from exact computation
// to U-catalog lookup with the paper's conservative fallback rules.
func WithCatalogs() Option {
	return func(o *options) error { o.useCatalogs = true; return nil }
}

func buildOptions(opts []Option) (options, error) {
	o := options{pageSize: rtree.DefaultPageSize, seed: 1}
	for _, fn := range opts {
		if err := fn(&o); err != nil {
			return o, err
		}
	}
	return o, nil
}

// Open creates an empty database for dim-dimensional points.
func Open(dim int, opts ...Option) (*DB, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("gaussrange: invalid dimension %d", dim)
	}
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	idx, err := core.NewDynamicIndex(dim, rtree.WithPageSize(o.pageSize))
	if err != nil {
		return nil, err
	}
	return &DB{idx: idx, dim: dim, options: o}, nil
}

// Load bulk-loads points (all rows must share one dimensionality) using STR
// packing — the fastest way to build a static database.
func Load(points [][]float64, opts ...Option) (*DB, error) {
	if len(points) == 0 {
		return nil, errors.New("gaussrange: Load requires at least one point (use Open for an empty database)")
	}
	dim := len(points[0])
	if dim == 0 {
		return nil, errors.New("gaussrange: zero-dimensional points")
	}
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	vecs := make([]vecmat.Vector, len(points))
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("gaussrange: point %d has dim %d, want %d", i, len(p), dim)
		}
		vecs[i] = vecmat.Vector(p).Clone()
	}
	idx, err := core.NewIndex(vecs, dim, rtree.WithPageSize(o.pageSize))
	if err != nil {
		return nil, err
	}
	return &DB{idx: idx, dim: dim, options: o}, nil
}

// Insert adds one point and returns its identifier.
func (db *DB) Insert(p []float64) (int64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.idx.Add(vecmat.Vector(p))
}

// Len returns the number of stored points.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.idx.Len()
}

// Dim returns the point dimensionality.
func (db *DB) Dim() int { return db.dim }

// Point returns a copy of the identified point's coordinates.
func (db *DB) Point(id int64) ([]float64, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	p, err := db.idx.Point(id)
	if err != nil {
		return nil, err
	}
	return append([]float64(nil), p...), nil
}

// QuerySpec describes one probabilistic range query.
type QuerySpec struct {
	// Center is the mean q of the query object's Gaussian location.
	Center []float64
	// Cov is the d×d covariance Σ (symmetric positive definite).
	Cov [][]float64
	// Delta is the distance threshold δ > 0.
	Delta float64
	// Theta is the probability threshold, 0 < θ < 1.
	Theta float64
	// Strategy names the filter combination: "RR", "BF", "RR+BF", "RR+OR",
	// "BF+OR" or "ALL"; "AUTO" picks BF for near-spherical covariances and
	// ALL otherwise. Empty selects ALL.
	Strategy string
	// TargetCov, when non-nil, models the stored points as uncertain too:
	// each target's true location follows a Gaussian centered at its stored
	// coordinates with this (shared) covariance. Because the difference of
	// independent Gaussians is Gaussian, the query is answered exactly by
	// widening the query covariance to Cov + TargetCov. This implements the
	// paper's future-work extension to uncertain target objects for the
	// homoscedastic case (all targets share one error model, as with a
	// common sensor).
	TargetCov [][]float64
}

// Stats mirrors the engine's per-phase accounting.
type Stats struct {
	Retrieved    int           // Phase-1 candidates from the R*-tree
	PrunedFringe int           // removed by the RR Minkowski fringe filter
	PrunedOR     int           // removed by the oblique-region filter
	PrunedBF     int           // removed beyond the α∥ bound
	AcceptedBF   int           // accepted within the α⊥ bound (no integration)
	Integrations int           // candidates that needed probability computation
	NodesRead    int           // R*-tree nodes visited
	IndexTime    time.Duration // Phase 1
	FilterTime   time.Duration // Phase 2
	ProbTime     time.Duration // Phase 3
}

// Result is a completed query.
type Result struct {
	// IDs are the qualifying point identifiers, ascending.
	IDs []int64
	// Stats reports where candidates were spent.
	Stats Stats
}

// Query runs PRQ(Center, Cov, Delta, Theta) and returns the qualifying
// point identifiers.
func (db *DB) Query(spec QuerySpec) (*Result, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	q, strat, err := db.compile(spec)
	if err != nil {
		return nil, err
	}
	engine, err := db.engine()
	if err != nil {
		return nil, err
	}
	res, err := engine.Search(q, strat)
	if err != nil {
		return nil, err
	}
	return convertResult(res), nil
}

// QueryProb returns the exact qualification probability of one stored point
// for the given query parameters — useful for inspecting why a point did or
// did not qualify.
func (db *DB) QueryProb(spec QuerySpec, id int64) (float64, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	q, _, err := db.compile(spec)
	if err != nil {
		return 0, err
	}
	p, err := db.idx.Point(id)
	if err != nil {
		return 0, err
	}
	return core.NewExactEvaluator().Qualification(q.Dist, p, q.Delta)
}

// RangeSearch is a conventional (certain) range query: ids of points within
// Euclidean distance radius of center, ascending.
func (db *DB) RangeSearch(center []float64, radius float64) ([]int64, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var ids []int64
	err := db.idx.Tree().SearchSphere(vecmat.Vector(center), radius,
		func(_ geom.Rect, id int64) bool {
			ids = append(ids, id)
			return true
		})
	if err != nil {
		return nil, err
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// compile converts the public spec to engine types.
func (db *DB) compile(spec QuerySpec) (core.Query, core.Strategy, error) {
	if len(spec.Center) != db.dim {
		return core.Query{}, 0, fmt.Errorf("gaussrange: center dim %d vs db dim %d", len(spec.Center), db.dim)
	}
	cov, err := vecmat.FromRows(spec.Cov)
	if err != nil {
		return core.Query{}, 0, err
	}
	if spec.TargetCov != nil {
		tc, err := vecmat.FromRows(spec.TargetCov)
		if err != nil {
			return core.Query{}, 0, fmt.Errorf("gaussrange: target covariance: %w", err)
		}
		cov, err = cov.Add(tc)
		if err != nil {
			return core.Query{}, 0, fmt.Errorf("gaussrange: target covariance: %w", err)
		}
	}
	g, err := gauss.New(vecmat.Vector(spec.Center), cov)
	if err != nil {
		return core.Query{}, 0, err
	}
	stratName := spec.Strategy
	if stratName == "" {
		stratName = "ALL"
	}
	var strat core.Strategy
	if strings.EqualFold(stratName, "AUTO") {
		strat = core.ChooseStrategy(g)
	} else {
		strat, err = core.ParseStrategy(stratName)
		if err != nil {
			return core.Query{}, 0, err
		}
	}
	return core.Query{Dist: g, Delta: spec.Delta, Theta: spec.Theta}, strat, nil
}

// engine builds a fresh engine bound to the configured evaluator.
func (db *DB) engine() (*core.Engine, error) {
	var eval core.Evaluator
	switch {
	case db.options.adaptiveMC:
		a, err := mc.NewAdaptive(500, db.options.mcSamples, 4, db.options.seed)
		if err != nil {
			return nil, err
		}
		eval = a
	case db.options.mcSamples > 0:
		integ, err := mc.NewIntegrator(db.options.mcSamples, db.options.seed)
		if err != nil {
			return nil, err
		}
		eval = integ
	default:
		eval = core.NewExactEvaluator()
	}
	return core.NewEngine(db.idx, eval, core.Options{UseCatalogs: db.options.useCatalogs})
}

func convertResult(res *core.Result) *Result {
	return &Result{
		IDs: res.IDs,
		Stats: Stats{
			Retrieved:    res.Stats.Retrieved,
			PrunedFringe: res.Stats.PrunedFringe,
			PrunedOR:     res.Stats.PrunedOR,
			PrunedBF:     res.Stats.PrunedBF,
			AcceptedBF:   res.Stats.AcceptedBF,
			Integrations: res.Stats.Integrations,
			NodesRead:    res.Stats.NodesRead,
			IndexTime:    res.Stats.PhaseDurations[0],
			FilterTime:   res.Stats.PhaseDurations[1],
			ProbTime:     res.Stats.PhaseDurations[2],
		},
	}
}

// Neighbor is one k-nearest-neighbor result.
type Neighbor struct {
	ID       int64
	Distance float64
}

// NearestNeighbors returns the k points closest to center, nearest first.
func (db *DB) NearestNeighbors(center []float64, k int) ([]Neighbor, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	nn, err := db.idx.NearestNeighbors(vecmat.Vector(center), k)
	if err != nil {
		return nil, err
	}
	out := make([]Neighbor, len(nn))
	for i, n := range nn {
		out[i] = Neighbor{ID: n.ID, Distance: math.Sqrt(n.Dist2)}
	}
	return out, nil
}

// PNNResult is one probabilistic nearest-neighbor answer.
type PNNResult struct {
	ID          int64
	Probability float64
}

// PNN returns every point whose probability of being the nearest neighbor
// of the imprecise query object N(center, cov) is at least theta, sorted by
// descending probability. The estimate uses `samples` Monte Carlo draws
// (10 000 resolves θ ≥ 0.01 reliably). This implements the probabilistic
// nearest neighbor query the paper lists as future work.
func (db *DB) PNN(center []float64, cov [][]float64, theta float64, samples int) ([]PNNResult, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	covM, err := vecmat.FromRows(cov)
	if err != nil {
		return nil, err
	}
	g, err := gauss.New(vecmat.Vector(center), covM)
	if err != nil {
		return nil, err
	}
	engine, err := db.engine()
	if err != nil {
		return nil, err
	}
	res, err := engine.PNN(g, theta, samples, db.options.seed)
	if err != nil {
		return nil, err
	}
	out := make([]PNNResult, len(res))
	for i, r := range res {
		out[i] = PNNResult{ID: r.ID, Probability: r.Probability}
	}
	return out, nil
}

// QueryParallel runs Query with the probability-computation phase spread
// over the given number of worker goroutines. Phase 3 dominates query cost,
// so the speedup is near-linear while candidates remain plentiful.
func (db *DB) QueryParallel(spec QuerySpec, workers int) (*Result, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	q, strat, err := db.compile(spec)
	if err != nil {
		return nil, err
	}
	var eval core.Evaluator
	if db.options.mcSamples > 0 {
		integ, err := mc.NewIntegrator(db.options.mcSamples, db.options.seed)
		if err != nil {
			return nil, err
		}
		eval = core.MCEvaluator{Integrator: integ}
	} else {
		eval = core.NewExactEvaluator()
	}
	engine, err := core.NewEngine(db.idx, eval, core.Options{UseCatalogs: db.options.useCatalogs})
	if err != nil {
		return nil, err
	}
	res, err := engine.SearchParallel(q, strat, workers)
	if err != nil {
		return nil, err
	}
	return convertResult(res), nil
}
