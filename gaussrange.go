// Package gaussrange implements probabilistic spatial range queries for
// Gaussian-based imprecise query objects, reproducing Ishikawa, Iijima & Yu,
// "Spatial Range Querying for Gaussian-Based Imprecise Query Objects"
// (ICDE 2009).
//
// A database holds exact d-dimensional points in an R*-tree. A query object
// has an uncertain location modeled as a Gaussian N(q, Σ); the query
// PRQ(q, Σ, δ, θ) returns every point whose probability of lying within
// distance δ of the query object is at least θ:
//
//	db, _ := gaussrange.Load(points)
//	res, _ := db.Query(gaussrange.QuerySpec{
//	    Center: []float64{500, 500},
//	    Cov:    [][]float64{{70, 34.6}, {34.6, 30}},
//	    Delta:  25,
//	    Theta:  0.01,
//	})
//
// Query processing runs the paper's three-phase pipeline: R*-tree search
// over a conservative rectangle, candidate filtering by the RR / OR / BF
// strategies (configurable; default ALL), and qualification-probability
// computation by Monte Carlo importance sampling (the paper's method) or an
// exact Ruben-series evaluator (this library's extension, default).
package gaussrange

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gaussrange/internal/core"
	"gaussrange/internal/gauss"
	"gaussrange/internal/mc"
	"gaussrange/internal/rtree"
	"gaussrange/internal/vecmat"
)

// DB is a queryable collection of exact points. All methods are safe for
// concurrent use, and reads never block behind writes: every query pins an
// immutable epoch snapshot with a single atomic load, while Insert, Delete
// and Apply build the next epoch behind a writer mutex and publish it
// atomically. A query's whole answer is therefore consistent with exactly
// one published epoch (reported in Result.Epoch), even while mutations land
// mid-flight.
type DB struct {
	idx     *core.Index
	dim     int
	options options

	// writeMu serializes the mutation path: the epoch transition in idx and
	// the matching mutation-log append happen as one unit, so the log's
	// record order always equals the epoch order. With a wal attached the
	// group-commit flusher is the only writer that takes it per group.
	writeMu sync.Mutex
	mlog    *MutationLog
	wal     atomic.Pointer[walPipeline]

	// plans caches compiled query plans by query shape; compileEng is the
	// long-lived engine that compiles them (lazily built, guarded by
	// compileMu — execution always supplies its own evaluator).
	plans      *planCache
	compileMu  sync.Mutex
	compileEng *core.Engine
}

type options struct {
	pageSize      int
	mcSamples     int // 0 selects the exact evaluator (unless adaptive is set)
	adaptiveMC    bool
	seed          uint64
	useCatalogs   bool
	planCacheSize int
	phase3Kernel  Phase3Kernel
	rebuild       RebuildStrategy
	pointerPhase1 bool
}

// Option configures Open and Load.
type Option func(*options) error

// WithPageSize sets the simulated R*-tree page size in bytes (default 1024,
// the paper's setting).
func WithPageSize(bytes int) Option {
	return func(o *options) error {
		if bytes < 128 {
			return fmt.Errorf("gaussrange: page size %d too small", bytes)
		}
		o.pageSize = bytes
		return nil
	}
}

// WithMonteCarlo selects the paper's importance-sampling evaluator with the
// given per-object sample count (the paper uses 100 000). Without this
// option the exact Ruben-series evaluator is used.
func WithMonteCarlo(samples int) Option {
	return func(o *options) error {
		if samples <= 0 {
			return fmt.Errorf("gaussrange: sample count must be positive, got %d", samples)
		}
		o.mcSamples = samples
		return nil
	}
}

// WithAdaptiveMonteCarlo selects sequential Monte Carlo with early
// stopping: candidates clearly above or below θ are decided with a few
// hundred samples, and only borderline ones consume the full budget of
// `maxSamples`. In the paper's workloads this cuts Phase-3 sampling by more
// than an order of magnitude at equal answer quality.
func WithAdaptiveMonteCarlo(maxSamples int) Option {
	return func(o *options) error {
		if maxSamples < 500 {
			return fmt.Errorf("gaussrange: adaptive budget %d too small (min 500)", maxSamples)
		}
		o.mcSamples = maxSamples
		o.adaptiveMC = true
		return nil
	}
}

// Phase3Kernel selects how Phase 3 (probability computation) evaluates the
// candidates that survive filtering.
type Phase3Kernel int

const (
	// KernelPerCandidate is the default: each candidate is evaluated
	// independently by the configured evaluator (exact, Monte Carlo, or
	// adaptive Monte Carlo) with its own sample stream.
	KernelPerCandidate Phase3Kernel = Phase3Kernel(core.KernelPerCandidate)
	// KernelSharedFlat draws one mean-free Gaussian sample cloud per
	// compiled plan (common random numbers) and reduces each candidate to a
	// flat squared-distance scan — no per-candidate Cholesky transforms.
	KernelSharedFlat Phase3Kernel = Phase3Kernel(core.KernelSharedFlat)
	// KernelSharedGrid additionally indexes the shared cloud with a uniform
	// grid of cell side δ, so each candidate touches only the ≤3^d cells
	// its δ-ball intersects instead of the whole cloud. Counts are exact
	// (identical to KernelSharedFlat with the same seed).
	KernelSharedGrid Phase3Kernel = Phase3Kernel(core.KernelSharedGrid)
	// KernelSharedEarly decides each candidate instead of counting it:
	// covered grid cells proven fully inside the δ-ball credit their
	// samples with zero distance tests, fully-outside cells are skipped,
	// and the boundary cells are scanned nearest-first under running
	// accept/reject bounds that stop as soon as the θ comparison is
	// settled. Answers are byte-identical to KernelSharedFlat and
	// KernelSharedGrid with the same seed; only the work differs.
	KernelSharedEarly Phase3Kernel = Phase3Kernel(core.KernelSharedEarly)
	// KernelTiered decides each candidate analytically before it ever
	// touches a sample: the compiled BF radii first, then a noncentral-χ²
	// probability bracket from the eigenvalue extremes of Σ, then Ruben's
	// exact series under a certified truncation bound — falling back to a
	// lazily drawn shared cloud only when θ lands inside the certified
	// error interval or Σ is too ill-conditioned for the series. Answers
	// are deterministic and seed-independent whenever the exact tiers
	// close every candidate (the typical case), and are always invariant
	// under worker count and execution order.
	KernelTiered Phase3Kernel = Phase3Kernel(core.KernelTiered)
	// KernelSharedBatch is KernelSharedEarly restructured for many-query
	// batches: QueryBatch groups specs by plan fingerprint (same Σ, δ, θ,
	// strategy — centers may differ) and sweeps each group's shared cloud
	// once, advancing every member's accept/reject bounds per block over
	// float32 sample mirrors (SIMD rows on amd64). Answers are byte-identical
	// to the other shared kernels with the same seed; Stats.BatchQueries and
	// Stats.BatchGroups report the coalescing. Single queries (Query,
	// QueryParallel) run the per-query early-exit path.
	KernelSharedBatch Phase3Kernel = Phase3Kernel(core.KernelSharedBatch)
)

// String names the kernel as benchmarks and stats endpoints report it.
func (k Phase3Kernel) String() string { return core.Phase3Kernel(k).String() }

// ParsePhase3Kernel maps a kernel name — as printed by Phase3Kernel.String
// and accepted by the CLI -phase3 flags — back to the kernel constant.
func ParsePhase3Kernel(name string) (Phase3Kernel, error) {
	for _, k := range []Phase3Kernel{
		KernelPerCandidate, KernelSharedFlat, KernelSharedGrid, KernelSharedEarly, KernelTiered, KernelSharedBatch,
	} {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("gaussrange: unknown Phase-3 kernel %q (want per-candidate, shared-flat, shared-grid, shared-early, tiered, or shared-batch)", name)
}

// WithPhase3Kernel selects the shared-sample Phase-3 kernel. The cloud size
// is WithMonteCarlo's sample count when set, else mc.DefaultSamples
// (100 000), and the cloud stream is seeded by WithSeed — with a shared
// cloud the answer set is a pure function of (query shape, seed), invariant
// under worker count and execution order. Incompatible with
// WithAdaptiveMonteCarlo (the adaptive evaluator decides per candidate how
// many samples to draw, which a shared cloud cannot express).
func WithPhase3Kernel(k Phase3Kernel) Option {
	return func(o *options) error {
		if k < KernelPerCandidate || k > KernelSharedBatch {
			return fmt.Errorf("gaussrange: unknown Phase-3 kernel %d", int(k))
		}
		o.phase3Kernel = k
		return nil
	}
}

// WithPointerPhase1 disables the packed flat-index Phase-1/2 kernel and runs
// the original pointer-tree search plus the second-pass filter loop. Answers
// and per-phase prune counts are identical either way; this is the baseline
// arm for benchmarks (prqbench phase1) and identity tests.
func WithPointerPhase1() Option {
	return func(o *options) error {
		o.pointerPhase1 = true
		return nil
	}
}

// WithSeed fixes the random stream of the Monte Carlo evaluator.
func WithSeed(seed uint64) Option {
	return func(o *options) error { o.seed = seed; return nil }
}

// WithCatalogs switches rθ and BF-radius derivation from exact computation
// to U-catalog lookup with the paper's conservative fallback rules.
func WithCatalogs() Option {
	return func(o *options) error { o.useCatalogs = true; return nil }
}

// RebuildStrategy selects how the storage engine folds its mutation overlay
// back into the base R*-tree when the overlay crosses the rebuild threshold.
type RebuildStrategy int

const (
	// RebuildSTR discards the old tree and STR bulk-loads the live points.
	// The default: `prqbench churn` measures it faster than the incremental
	// path at every write fraction on the paper's workload, and it restores
	// the packed leaf layout that Phase-1 search performance depends on.
	RebuildSTR RebuildStrategy = RebuildStrategy(core.RebuildSTR)
	// RebuildIncremental deep-clones the base tree and replays overlay
	// inserts/deletes into the clone, preserving the existing node layout.
	RebuildIncremental RebuildStrategy = RebuildStrategy(core.RebuildIncremental)
)

// WithRebuildStrategy selects the overlay-rebuild strategy (default
// RebuildSTR). Exposed so benchmarks can compare the two paths; the default
// is right for almost every workload.
func WithRebuildStrategy(s RebuildStrategy) Option {
	return func(o *options) error {
		if s != RebuildSTR && s != RebuildIncremental {
			return fmt.Errorf("gaussrange: unknown rebuild strategy %d", int(s))
		}
		o.rebuild = s
		return nil
	}
}

// WithPlanCacheSize sets how many compiled query plans the database retains
// (default DefaultPlanCacheSize). Zero disables the cache, forcing every
// query to recompile its geometry.
func WithPlanCacheSize(n int) Option {
	return func(o *options) error {
		if n < 0 {
			return fmt.Errorf("gaussrange: negative plan cache size %d", n)
		}
		o.planCacheSize = n
		return nil
	}
}

func buildOptions(opts []Option) (options, error) {
	o := options{pageSize: rtree.DefaultPageSize, seed: 1, planCacheSize: DefaultPlanCacheSize}
	for _, fn := range opts {
		if err := fn(&o); err != nil {
			return o, err
		}
	}
	if o.phase3Kernel != KernelPerCandidate && o.adaptiveMC {
		return o, errors.New("gaussrange: WithPhase3Kernel cannot be combined with WithAdaptiveMonteCarlo")
	}
	return o, nil
}

// Open creates an empty database for dim-dimensional points.
func Open(dim int, opts ...Option) (*DB, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("gaussrange: invalid dimension %d", dim)
	}
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	idx, err := core.NewDynamicIndex(dim, rtree.WithPageSize(o.pageSize))
	if err != nil {
		return nil, err
	}
	idx.SetRebuildStrategy(core.RebuildStrategy(o.rebuild))
	return &DB{idx: idx, dim: dim, options: o, plans: newPlanCache(o.planCacheSize)}, nil
}

// Load bulk-loads points (all rows must share one dimensionality) using STR
// packing — the fastest way to build a static database.
func Load(points [][]float64, opts ...Option) (*DB, error) {
	if len(points) == 0 {
		return nil, errors.New("gaussrange: Load requires at least one point (use Open for an empty database)")
	}
	dim := len(points[0])
	if dim == 0 {
		return nil, errors.New("gaussrange: zero-dimensional points")
	}
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	vecs := make([]vecmat.Vector, len(points))
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("gaussrange: point %d has dim %d, want %d", i, len(p), dim)
		}
		vecs[i] = vecmat.Vector(p).Clone()
	}
	idx, err := core.NewIndex(vecs, dim, rtree.WithPageSize(o.pageSize))
	if err != nil {
		return nil, err
	}
	idx.SetRebuildStrategy(core.RebuildStrategy(o.rebuild))
	return &DB{idx: idx, dim: dim, options: o, plans: newPlanCache(o.planCacheSize)}, nil
}

// LoadWithIDs bulk-loads points under caller-assigned identifiers: points[i]
// is stored as id ids[i], and unused identifiers below the maximum become
// permanent holes. This is how a shard loads its slice of a globally
// partitioned data set while keeping the global ids, so sharded answers are
// id-identical to an unsharded Load of the full set. The ids must be unique
// and non-negative; they need not be sorted.
func LoadWithIDs(points [][]float64, ids []int64, opts ...Option) (*DB, error) {
	if len(points) == 0 {
		return nil, errors.New("gaussrange: LoadWithIDs requires at least one point (use Open for an empty database)")
	}
	if len(ids) != len(points) {
		return nil, fmt.Errorf("gaussrange: %d ids for %d points", len(ids), len(points))
	}
	dim := len(points[0])
	if dim == 0 {
		return nil, errors.New("gaussrange: zero-dimensional points")
	}
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	var maxID int64 = -1
	for _, id := range ids {
		if id < 0 {
			return nil, fmt.Errorf("gaussrange: negative point id %d", id)
		}
		if id > maxID {
			maxID = id
		}
	}
	addressed := make([]vecmat.Vector, maxID+1)
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("gaussrange: point %d has dim %d, want %d", i, len(p), dim)
		}
		if addressed[ids[i]] != nil {
			return nil, fmt.Errorf("gaussrange: duplicate point id %d", ids[i])
		}
		addressed[ids[i]] = vecmat.Vector(p).Clone()
	}
	idx, err := core.RestoreIndex(addressed, 1, dim, rtree.WithPageSize(o.pageSize))
	if err != nil {
		return nil, err
	}
	idx.SetRebuildStrategy(core.RebuildStrategy(o.rebuild))
	return &DB{idx: idx, dim: dim, options: o, plans: newPlanCache(o.planCacheSize)}, nil
}

// Insert adds one point, publishing a new epoch, and returns its identifier.
// Identifiers are assigned sequentially and never reused.
func (db *DB) Insert(p []float64) (int64, error) {
	ids, _, _, err := db.Apply([][]float64{p}, nil)
	if err != nil {
		return 0, err
	}
	return ids[0], nil
}

// Delete removes one point, publishing a new epoch, and reports whether the
// id was live. Deleting an unknown or already-deleted id is a no-op
// (false, nil), so retries and log replay stay idempotent.
func (db *DB) Delete(id int64) (bool, error) {
	_, deleted, _, err := db.Apply(nil, []int64{id})
	if err != nil {
		return false, err
	}
	return deleted[0], nil
}

// Apply atomically applies one mutation batch — deletes first, then inserts
// — and publishes the result as a single new epoch: concurrent queries see
// either all of the batch or none of it. It returns the identifiers assigned
// to the inserts (in order), a per-delete liveness report, and the published
// epoch (a no-op batch publishes nothing and returns the current epoch).
// When a mutation log is attached, the batch is appended to it before Apply
// returns; when a wal is attached (AttachWAL), the batch rides the
// group-commit pipeline and Apply returns only after its group's fsync
// durability point.
func (db *DB) Apply(inserts [][]float64, deletes []int64) (ids []int64, deleted []bool, epoch uint64, err error) {
	if p := db.wal.Load(); p != nil {
		return p.apply(inserts, nil, deletes)
	}
	vecs := make([]vecmat.Vector, len(inserts))
	for i, p := range inserts {
		vecs[i] = vecmat.Vector(p)
	}
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	before := db.idx.Epoch()
	ids, deleted, epoch, err = db.idx.Apply(vecs, deletes)
	if err != nil {
		return nil, nil, 0, err
	}
	if db.mlog != nil && epoch != before {
		if err := db.mlog.append(epoch, inserts, nil, deletes, deleted); err != nil {
			return nil, nil, 0, fmt.Errorf("gaussrange: mutation log: %w", err)
		}
	}
	return ids, deleted, epoch, nil
}

// ApplyWithIDs is Apply with caller-assigned insert identifiers, for when an
// external allocator — typically a shard router that owns a global id space —
// decides what each inserted point is called. insertIDs must be strictly
// increasing and at least MaxID; skipped identifiers become permanent holes.
// When a mutation log is attached the ids are journaled with the batch, so
// replay reproduces the exact assignment. With a wal attached the batch rides
// the group-commit pipeline like Apply.
func (db *DB) ApplyWithIDs(inserts [][]float64, insertIDs []int64, deletes []int64) (deleted []bool, epoch uint64, err error) {
	if p := db.wal.Load(); p != nil {
		if insertIDs != nil && len(insertIDs) != len(inserts) {
			return nil, 0, fmt.Errorf("core: %d insert ids for %d inserts", len(insertIDs), len(inserts))
		}
		if insertIDs == nil {
			insertIDs = []int64{}
		}
		_, deleted, epoch, err = p.apply(inserts, insertIDs, deletes)
		return deleted, epoch, err
	}
	vecs := make([]vecmat.Vector, len(inserts))
	for i, p := range inserts {
		vecs[i] = vecmat.Vector(p)
	}
	if insertIDs == nil {
		insertIDs = []int64{}
	}
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	before := db.idx.Epoch()
	deleted, epoch, err = db.idx.ApplyWithIDs(vecs, insertIDs, deletes)
	if err != nil {
		return nil, 0, err
	}
	if db.mlog != nil && epoch != before {
		if err := db.mlog.append(epoch, inserts, insertIDs, deletes, deleted); err != nil {
			return nil, 0, fmt.Errorf("gaussrange: mutation log: %w", err)
		}
	}
	return deleted, epoch, nil
}

// MaxID returns the exclusive upper bound of identifiers ever assigned
// (deleted and skipped ids remain burned). An external id allocator seeds its
// counter from the maximum MaxID across shards.
func (db *DB) MaxID() int64 { return db.idx.Current().MaxID() }

// Epoch returns the current storage epoch: 1 after the initial load, +1 per
// published mutation batch.
func (db *DB) Epoch() uint64 { return db.idx.Epoch() }

// Len returns the number of stored points.
func (db *DB) Len() int { return db.idx.Len() }

// Dim returns the point dimensionality.
func (db *DB) Dim() int { return db.dim }

// Point returns a copy of the identified point's coordinates.
func (db *DB) Point(id int64) ([]float64, error) {
	p, err := db.idx.Point(id)
	if err != nil {
		return nil, err
	}
	return append([]float64(nil), p...), nil
}

// QuerySpec describes one probabilistic range query.
type QuerySpec struct {
	// Center is the mean q of the query object's Gaussian location.
	Center []float64
	// Cov is the d×d covariance Σ (symmetric positive definite).
	Cov [][]float64
	// Delta is the distance threshold δ > 0.
	Delta float64
	// Theta is the probability threshold, 0 < θ < 1.
	Theta float64
	// Strategy names the filter combination: "RR", "BF", "RR+BF", "RR+OR",
	// "BF+OR" or "ALL"; "AUTO" picks BF for near-spherical covariances and
	// ALL otherwise. Empty selects ALL.
	Strategy string
	// TargetCov, when non-nil, models the stored points as uncertain too:
	// each target's true location follows a Gaussian centered at its stored
	// coordinates with this (shared) covariance. Because the difference of
	// independent Gaussians is Gaussian, the query is answered exactly by
	// widening the query covariance to Cov + TargetCov. This implements the
	// paper's future-work extension to uncertain target objects for the
	// homoscedastic case (all targets share one error model, as with a
	// common sensor).
	TargetCov [][]float64
}

// Stats mirrors the engine's per-phase accounting.
type Stats struct {
	Retrieved    int           // Phase-1 candidates from the R*-tree
	PrunedFringe int           // removed by the RR Minkowski fringe filter
	PrunedOR     int           // removed by the oblique-region filter
	PrunedBF     int           // removed beyond the α∥ bound
	AcceptedBF   int           // accepted within the α⊥ bound (no integration)
	Integrations int           // candidates that needed probability computation
	NodesRead    int           // base-index nodes visited (either representation)
	IndexTime    time.Duration // Phase 1
	FilterTime   time.Duration // Phase 2
	ProbTime     time.Duration // Phase 3
	// Packed front-half accounting: NodesReadPacked is how many of the
	// NodesRead visits were served by the cache-linear packed mirror (0 when
	// the pointer-tree front half ran), OverlayScanned how many overlay
	// inserts the Phase-1 merge examined, and F32Rechecks how many index
	// entries straddled the float32 certificate bands and were rechecked in
	// float64.
	NodesReadPacked int
	OverlayScanned  int
	F32Rechecks     int
	// SamplesDrawn and SamplesTouched account for the shared-sample Phase-3
	// kernel (WithPhase3Kernel): Drawn is the plan's cloud size, Touched is
	// the number of samples distance-tested across the query's candidates.
	// Both are 0 under the default per-candidate kernel.
	SamplesDrawn   int
	SamplesTouched int
	// Early-exit kernel accounting (KernelSharedEarly): covered grid cells
	// proven fully outside / fully inside the δ-ball by corner distance,
	// and candidates whose accept/reject bounds closed before the scan
	// finished. All 0 under the other kernels.
	CellsSkipped    int
	CellsFullInside int
	EarlyDecisions  int
	// Tier-mix accounting (KernelTiered): how many Phase-3 candidates each
	// tier of the pipeline decided — TierBF by the compiled BF radii,
	// TierEnvelope by the noncentral-χ² bracket, TierExact by Ruben's
	// series, TierMC by the sampling fallback. The four sum to
	// Integrations; candidates closed before TierMC touch no samples. All 0
	// under the other kernels.
	TierBF       int
	TierEnvelope int
	TierExact    int
	TierMC       int
	// GridFallback reports that a grid-backed kernel could not build its
	// cell directory for this query's δ and ran the flat scan instead.
	GridFallback bool
	// Batched-execution accounting (KernelSharedBatch): BatchQueries is how
	// many queries shared this query's Phase-3 sweep (0 when the query ran a
	// per-query executor); BatchGroups is 1 on exactly one member per sweep,
	// so aggregated totals count each coalesced group once.
	BatchQueries int
	BatchGroups  int
}

// TierMix returns the tiered kernel's per-tier decision counts in pipeline
// order. All zero unless the query ran under KernelTiered.
func (s Stats) TierMix() (bf, envelope, exact, mc int) {
	return s.TierBF, s.TierEnvelope, s.TierExact, s.TierMC
}

// SampleFreeDecisions returns how many Phase-3 candidates the tiered kernel
// closed without touching a single sample (tiers 0–2).
func (s Stats) SampleFreeDecisions() int { return s.TierBF + s.TierEnvelope + s.TierExact }

// Add accumulates other into s. Long-running services that track per-phase
// totals across many queries (the server's /statsz endpoint, load
// generators) sum per-query Stats with it.
func (s *Stats) Add(other Stats) {
	s.Retrieved += other.Retrieved
	s.PrunedFringe += other.PrunedFringe
	s.PrunedOR += other.PrunedOR
	s.PrunedBF += other.PrunedBF
	s.AcceptedBF += other.AcceptedBF
	s.Integrations += other.Integrations
	s.NodesRead += other.NodesRead
	s.NodesReadPacked += other.NodesReadPacked
	s.OverlayScanned += other.OverlayScanned
	s.F32Rechecks += other.F32Rechecks
	s.IndexTime += other.IndexTime
	s.FilterTime += other.FilterTime
	s.ProbTime += other.ProbTime
	s.SamplesDrawn += other.SamplesDrawn
	s.SamplesTouched += other.SamplesTouched
	s.CellsSkipped += other.CellsSkipped
	s.CellsFullInside += other.CellsFullInside
	s.EarlyDecisions += other.EarlyDecisions
	s.TierBF += other.TierBF
	s.TierEnvelope += other.TierEnvelope
	s.TierExact += other.TierExact
	s.TierMC += other.TierMC
	s.BatchQueries += other.BatchQueries
	s.BatchGroups += other.BatchGroups
	// A single degraded query marks the running total: totals answer "did
	// any query fall back", per-query Stats answer "which".
	s.GridFallback = s.GridFallback || other.GridFallback
}

// Result is a completed query.
type Result struct {
	// IDs are the qualifying point identifiers, ascending.
	IDs []int64
	// Epoch is the storage epoch the query pinned: the whole answer is
	// consistent with exactly this published snapshot.
	Epoch uint64
	// Stats reports where candidates were spent.
	Stats Stats
}

// Query runs PRQ(Center, Cov, Delta, Theta) and returns the qualifying
// point identifiers.
func (db *DB) Query(spec QuerySpec) (*Result, error) {
	return db.QueryCtx(context.Background(), spec)
}

// QueryCtx runs the query with cancellation and deadline support: a
// cancelled or expired ctx aborts Phase 3 between candidates and returns
// ctx.Err(). The query shape (Σ, δ, θ, strategy) is compiled into a plan at
// most once — repeated queries with the same shape, at any center, reuse the
// cached plan and skip the eigendecomposition and bounding-radius
// derivation entirely.
func (db *DB) QueryCtx(ctx context.Context, spec QuerySpec) (*Result, error) {
	eval, err := db.newEvaluator()
	if err != nil {
		return nil, err
	}
	return db.execSpec(ctx, spec, eval)
}

// QueryBatch runs many queries, spreading them over a pool of worker
// goroutines. Each worker builds one Phase-3 evaluator and reuses it across
// every query it claims (work stealing over the spec list), and all workers
// share the plan cache, so batches of same-shape queries — the standing-query
// and load-test patterns — compile once and amortize evaluator startup.
// Results align with specs. The first error (or ctx cancellation) stops the
// batch promptly.
//
// Under KernelSharedBatch the batch is instead grouped by plan fingerprint
// (same Σ, δ, θ, strategy — centers may differ) and each group's Phase 3
// runs as one batched sweep over the group's shared cloud; see
// KernelSharedBatch for the identity guarantee and Stats accounting.
func (db *DB) QueryBatch(ctx context.Context, specs []QuerySpec, workers int) ([]*Result, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	if workers < 1 {
		workers = 1
	}
	if db.options.phase3Kernel == KernelSharedBatch {
		return db.queryBatchCoalesced(ctx, specs, workers)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	results := make([]*Result, len(specs))

	if workers == 1 {
		eval, err := db.newEvaluator()
		if err != nil {
			return nil, err
		}
		for i := range specs {
			res, err := db.execSpec(ctx, specs[i], eval)
			if err != nil {
				return nil, batchErr(i, err)
			}
			results[i] = res
		}
		return results, nil
	}

	execCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eval, err := db.newEvaluator()
			if err != nil {
				fail(err)
				return
			}
			for {
				if execCtx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(specs) {
					return
				}
				res, err := db.execSpec(execCtx, specs[i], eval)
				if err != nil {
					fail(batchErr(i, err))
					return
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

func batchErr(i int, err error) error {
	return fmt.Errorf("gaussrange: batch query %d: %w", i, err)
}

// queryBatchCoalesced is QueryBatch's KernelSharedBatch path: specs group by
// plan fingerprint, each group's members rebind one cached compilation (so
// they share its sample cloud), and core.ExecuteBatch sweeps the cloud once
// per group with all members' bounds advancing per block. Groups execute in
// first-appearance order; results align with specs.
func (db *DB) queryBatchCoalesced(ctx context.Context, specs []QuerySpec, workers int) ([]*Result, error) {
	var order []string
	groups := make(map[string][]int)
	for i := range specs {
		key, err := db.planFingerprint(specs[i])
		if err != nil {
			return nil, batchErr(i, err)
		}
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], i)
	}
	results := make([]*Result, len(specs))
	for _, key := range order {
		idxs := groups[key]
		// Compile (or fetch) the group's base plan once, then rebind the
		// remaining members from it directly — never via planFor, which with
		// a disabled plan cache would compile per member and break the
		// shared-cloud requirement.
		base, err := db.planFor(specs[idxs[0]])
		if err != nil {
			return nil, batchErr(idxs[0], err)
		}
		plans := make([]*core.Plan, len(idxs))
		plans[0] = base
		for j, i := range idxs[1:] {
			dist, err := base.Dist().WithMean(vecmat.Vector(specs[i].Center))
			if err != nil {
				return nil, batchErr(i, err)
			}
			plans[j+1], err = base.Rebind(dist)
			if err != nil {
				return nil, batchErr(i, err)
			}
		}
		res, err := core.ExecuteBatch(ctx, plans, workers)
		if err != nil {
			return nil, batchErr(idxs[0], err)
		}
		for j, i := range idxs {
			results[i] = convertResult(res[j])
		}
	}
	return results, nil
}

// PlanFingerprint returns the opaque fingerprint of the spec's compiled
// query shape — Σ (with TargetCov folded in), δ, θ and the normalized
// strategy, excluding the center. It is the key under which plans cache and
// under which QueryBatch coalesces queries into one batched Phase-3 sweep;
// servers use it to group concurrent requests that can share an execution.
func (db *DB) PlanFingerprint(spec QuerySpec) (string, error) {
	return db.planFingerprint(spec)
}

func (db *DB) planFingerprint(spec QuerySpec) (string, error) {
	if len(spec.Center) != db.dim {
		return "", fmt.Errorf("gaussrange: center dim %d vs db dim %d", len(spec.Center), db.dim)
	}
	cov, err := db.specCov(spec)
	if err != nil {
		return "", err
	}
	stratName := spec.Strategy
	if stratName == "" {
		stratName = "ALL"
	}
	return planKey(cov, spec.Delta, spec.Theta, stratName), nil
}

// execSpec resolves the plan for spec (cache-assisted) and executes it
// serially with eval; the executor pins its own epoch snapshot.
func (db *DB) execSpec(ctx context.Context, spec QuerySpec, eval core.Evaluator) (*Result, error) {
	plan, err := db.planFor(spec)
	if err != nil {
		return nil, err
	}
	res, err := plan.ExecuteEval(ctx, eval)
	if err != nil {
		return nil, err
	}
	return convertResult(res), nil
}

// PlanCacheStats returns the cumulative plan-cache hit and miss counts —
// the hit rate shows how often queries skipped compilation.
func (db *DB) PlanCacheStats() (hits, misses uint64) {
	return db.plans.stats()
}

// QueryProb returns the exact qualification probability of one stored point
// for the given query parameters — useful for inspecting why a point did or
// did not qualify.
func (db *DB) QueryProb(spec QuerySpec, id int64) (float64, error) {
	q, _, err := db.compile(spec)
	if err != nil {
		return 0, err
	}
	p, err := db.idx.Point(id)
	if err != nil {
		return 0, err
	}
	return core.NewExactEvaluator().Qualification(q.Dist, p, q.Delta)
}

// RangeSearch is a conventional (certain) range query: ids of points within
// Euclidean distance radius of center, ascending. The whole answer comes
// from one pinned epoch snapshot.
func (db *DB) RangeSearch(center []float64, radius float64) ([]int64, error) {
	var ids []int64
	err := db.idx.Current().SearchSphere(vecmat.Vector(center), radius,
		func(id int64) bool {
			ids = append(ids, id)
			return true
		})
	if err != nil {
		return nil, err
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// specCov parses the query covariance, folding in TargetCov (homoscedastic
// uncertain targets) when present.
func (db *DB) specCov(spec QuerySpec) (*vecmat.Symmetric, error) {
	cov, err := vecmat.FromRows(spec.Cov)
	if err != nil {
		return nil, err
	}
	if spec.TargetCov != nil {
		tc, err := vecmat.FromRows(spec.TargetCov)
		if err != nil {
			return nil, fmt.Errorf("gaussrange: target covariance: %w", err)
		}
		cov, err = cov.Add(tc)
		if err != nil {
			return nil, fmt.Errorf("gaussrange: target covariance: %w", err)
		}
	}
	return cov, nil
}

// planFor returns the compiled plan for spec, consulting the plan cache.
// On a hit the cached plan is rebound to the spec's center in O(d); on a
// miss the full compilation (eigendecomposition, rθ, BF radii, regions)
// runs once and the result is cached for every later same-shape query.
func (db *DB) planFor(spec QuerySpec) (*core.Plan, error) {
	if len(spec.Center) != db.dim {
		return nil, fmt.Errorf("gaussrange: center dim %d vs db dim %d", len(spec.Center), db.dim)
	}
	cov, err := db.specCov(spec)
	if err != nil {
		return nil, err
	}
	stratName := spec.Strategy
	if stratName == "" {
		stratName = "ALL"
	}
	key := planKey(cov, spec.Delta, spec.Theta, stratName)
	if cached, ok := db.plans.get(key); ok {
		dist, err := cached.Dist().WithMean(vecmat.Vector(spec.Center))
		if err != nil {
			return nil, err
		}
		return cached.Rebind(dist)
	}

	g, err := gauss.New(vecmat.Vector(spec.Center), cov)
	if err != nil {
		return nil, err
	}
	var strat core.Strategy
	if strings.EqualFold(stratName, "AUTO") {
		strat = core.ChooseStrategy(g)
	} else {
		strat, err = core.ParseStrategy(stratName)
		if err != nil {
			return nil, err
		}
	}
	eng, err := db.compileEngine()
	if err != nil {
		return nil, err
	}
	plan, err := eng.Compile(core.Query{Dist: g, Delta: spec.Delta, Theta: spec.Theta}, strat)
	if err != nil {
		return nil, err
	}
	db.plans.put(key, plan)
	return plan, nil
}

// PlanRegion compiles (or fetches from the plan cache) the spec's plan and
// returns its Phase-1 search rectangle as per-axis [lo, hi] bounds. Every
// answer point lies inside the rectangle, which makes it the routing key for
// scatter-gather serving: shards whose regions miss it cannot contribute.
// empty reports that compilation proved the whole answer empty (the bounds
// are then nil). The DB's points are never touched — an empty DB of the
// right dimensionality works as a pure planner.
func (db *DB) PlanRegion(spec QuerySpec) (lo, hi []float64, empty bool, err error) {
	plan, err := db.planFor(spec)
	if err != nil {
		return nil, nil, false, err
	}
	if plan.Empty() {
		return nil, nil, true, nil
	}
	r := plan.SearchRect()
	return r.Lo, r.Hi, false, nil
}

// compile converts the public spec to engine types (no plan caching — used
// by introspection paths that need the raw query).
func (db *DB) compile(spec QuerySpec) (core.Query, core.Strategy, error) {
	if len(spec.Center) != db.dim {
		return core.Query{}, 0, fmt.Errorf("gaussrange: center dim %d vs db dim %d", len(spec.Center), db.dim)
	}
	cov, err := db.specCov(spec)
	if err != nil {
		return core.Query{}, 0, err
	}
	g, err := gauss.New(vecmat.Vector(spec.Center), cov)
	if err != nil {
		return core.Query{}, 0, err
	}
	stratName := spec.Strategy
	if stratName == "" {
		stratName = "ALL"
	}
	var strat core.Strategy
	if strings.EqualFold(stratName, "AUTO") {
		strat = core.ChooseStrategy(g)
	} else {
		strat, err = core.ParseStrategy(stratName)
		if err != nil {
			return core.Query{}, 0, err
		}
	}
	return core.Query{Dist: g, Delta: spec.Delta, Theta: spec.Theta}, strat, nil
}

// compileEngine returns the DB's long-lived plan-compilation engine. Its
// evaluator is never used for execution — DB paths supply a fresh evaluator
// per call (ExecuteEval/ExecuteWith), keeping cached plans shareable.
func (db *DB) compileEngine() (*core.Engine, error) {
	db.compileMu.Lock()
	defer db.compileMu.Unlock()
	if db.compileEng == nil {
		eng, err := core.NewEngine(db.idx, core.NewExactEvaluator(),
			core.Options{UseCatalogs: db.options.useCatalogs, Phase3: db.phase3Options(),
				PointerPhase1: db.options.pointerPhase1})
		if err != nil {
			return nil, err
		}
		db.compileEng = eng
	}
	return db.compileEng, nil
}

// phase3Options maps the DB options onto the engine's Phase-3 kernel
// configuration: the shared-cloud size follows WithMonteCarlo when set
// (mc.DefaultSamples otherwise) and the cloud stream is seeded by WithSeed.
func (db *DB) phase3Options() core.Phase3Options {
	return core.Phase3Options{
		Kernel:  core.Phase3Kernel(db.options.phase3Kernel),
		Samples: db.options.mcSamples,
		Seed:    db.options.seed,
	}
}

// newEvaluator builds a fresh Phase-3 evaluator per the DB options.
func (db *DB) newEvaluator() (core.Evaluator, error) {
	switch {
	case db.options.adaptiveMC:
		return mc.NewAdaptive(500, db.options.mcSamples, 4, db.options.seed)
	case db.options.mcSamples > 0:
		return mc.NewIntegrator(db.options.mcSamples, db.options.seed)
	default:
		return core.NewExactEvaluator(), nil
	}
}

// newParallelEvaluator builds a forkable evaluator for intra-query worker
// pools. The adaptive evaluator cannot fork, so parallel paths fall back to
// the fixed Monte Carlo budget, as before.
func (db *DB) newParallelEvaluator() (core.Evaluator, error) {
	if db.options.mcSamples > 0 {
		integ, err := mc.NewIntegrator(db.options.mcSamples, db.options.seed)
		if err != nil {
			return nil, err
		}
		return core.MCEvaluator{Integrator: integ}, nil
	}
	return core.NewExactEvaluator(), nil
}

// engine builds a fresh engine bound to the configured evaluator.
func (db *DB) engine() (*core.Engine, error) {
	eval, err := db.newEvaluator()
	if err != nil {
		return nil, err
	}
	return core.NewEngine(db.idx, eval, core.Options{UseCatalogs: db.options.useCatalogs,
		PointerPhase1: db.options.pointerPhase1})
}

func convertResult(res *core.Result) *Result {
	return &Result{
		IDs:   res.IDs,
		Epoch: res.Stats.Epoch,
		Stats: Stats{
			Retrieved:       res.Stats.Retrieved,
			PrunedFringe:    res.Stats.PrunedFringe,
			PrunedOR:        res.Stats.PrunedOR,
			PrunedBF:        res.Stats.PrunedBF,
			AcceptedBF:      res.Stats.AcceptedBF,
			Integrations:    res.Stats.Integrations,
			NodesRead:       res.Stats.NodesRead,
			NodesReadPacked: res.Stats.NodesReadPacked,
			OverlayScanned:  res.Stats.OverlayScanned,
			F32Rechecks:     res.Stats.F32Rechecks,
			IndexTime:       res.Stats.PhaseDurations[0],
			FilterTime:      res.Stats.PhaseDurations[1],
			ProbTime:        res.Stats.PhaseDurations[2],
			SamplesDrawn:    res.Stats.SamplesDrawn,
			SamplesTouched:  res.Stats.SamplesTouched,
			CellsSkipped:    res.Stats.CellsSkipped,
			CellsFullInside: res.Stats.CellsFullInside,
			EarlyDecisions:  res.Stats.EarlyDecisions,
			TierBF:          res.Stats.TierBF,
			TierEnvelope:    res.Stats.TierEnvelope,
			TierExact:       res.Stats.TierExact,
			TierMC:          res.Stats.TierMC,
			GridFallback:    res.Stats.GridFallback,
			BatchQueries:    res.Stats.BatchQueries,
			BatchGroups:     res.Stats.BatchGroups,
		},
	}
}

// Neighbor is one k-nearest-neighbor result.
type Neighbor struct {
	ID       int64
	Distance float64
}

// NearestNeighbors returns the k points closest to center, nearest first.
func (db *DB) NearestNeighbors(center []float64, k int) ([]Neighbor, error) {
	nn, err := db.idx.NearestNeighbors(vecmat.Vector(center), k)
	if err != nil {
		return nil, err
	}
	out := make([]Neighbor, len(nn))
	for i, n := range nn {
		out[i] = Neighbor{ID: n.ID, Distance: math.Sqrt(n.Dist2)}
	}
	return out, nil
}

// PNNResult is one probabilistic nearest-neighbor answer.
type PNNResult struct {
	ID          int64
	Probability float64
}

// PNN returns every point whose probability of being the nearest neighbor
// of the imprecise query object N(center, cov) is at least theta, sorted by
// descending probability. The estimate uses `samples` Monte Carlo draws
// (10 000 resolves θ ≥ 0.01 reliably). This implements the probabilistic
// nearest neighbor query the paper lists as future work.
func (db *DB) PNN(center []float64, cov [][]float64, theta float64, samples int) ([]PNNResult, error) {
	covM, err := vecmat.FromRows(cov)
	if err != nil {
		return nil, err
	}
	g, err := gauss.New(vecmat.Vector(center), covM)
	if err != nil {
		return nil, err
	}
	engine, err := db.engine()
	if err != nil {
		return nil, err
	}
	res, err := engine.PNN(g, theta, samples, db.options.seed)
	if err != nil {
		return nil, err
	}
	out := make([]PNNResult, len(res))
	for i, r := range res {
		out[i] = PNNResult{ID: r.ID, Probability: r.Probability}
	}
	return out, nil
}

// QueryParallel runs Query with the probability-computation phase spread
// over the given number of worker goroutines. Phase 3 dominates query cost,
// so the speedup is near-linear while candidates remain plentiful.
func (db *DB) QueryParallel(spec QuerySpec, workers int) (*Result, error) {
	return db.QueryParallelCtx(context.Background(), spec, workers)
}

// QueryParallelCtx is QueryParallel with cancellation and deadline support:
// a cancelled or expired ctx stops every Phase-3 worker promptly (no new
// candidates are claimed once cancellation is observed) and returns
// ctx.Err(), matching QueryCtx and QueryBatch semantics.
func (db *DB) QueryParallelCtx(ctx context.Context, spec QuerySpec, workers int) (*Result, error) {
	plan, err := db.planFor(spec)
	if err != nil {
		return nil, err
	}
	eval, err := db.newParallelEvaluator()
	if err != nil {
		return nil, err
	}
	res, err := plan.ExecuteWith(ctx, eval, workers)
	if err != nil {
		return nil, err
	}
	return convertResult(res), nil
}
