package gaussrange

import (
	"context"
	"fmt"

	"gaussrange/internal/core"
	"gaussrange/internal/kalman"
	"gaussrange/internal/trajectory"
	"gaussrange/internal/vecmat"
)

// Monitor is a standing probabilistic range query attached to a moving,
// imprecisely-localized query object: the moving-object scenario of the
// paper's introduction. The monitor maintains a Kalman position belief;
// motion commands and position fixes advance it, and each Step re-evaluates
// the query and reports which points entered and left the probabilistic
// range.
type Monitor struct {
	inner *trajectory.Monitor
}

// MonitorSpec configures NewMonitor.
type MonitorSpec struct {
	// Start and StartCov initialize the position belief N(Start, StartCov).
	Start    []float64
	StartCov [][]float64
	// Delta and Theta are the standing query's PRQ parameters.
	Delta, Theta float64
}

// NewMonitor attaches a standing query to the database. The database may be
// mutated while monitors are attached: each Step pins the newest published
// epoch snapshot, so its answer is internally consistent, and points
// inserted or deleted between steps show up as Entered/Left deltas.
func (db *DB) NewMonitor(spec MonitorSpec) (*Monitor, error) {
	cov, err := vecmat.FromRows(spec.StartCov)
	if err != nil {
		return nil, err
	}
	f, err := kalman.New(vecmat.Vector(spec.Start), cov)
	if err != nil {
		return nil, err
	}
	inner, err := trajectory.New(db.idx, core.NewExactEvaluator(), f,
		trajectory.Config{Delta: spec.Delta, Theta: spec.Theta})
	if err != nil {
		return nil, err
	}
	return &Monitor{inner: inner}, nil
}

// Move advances the belief by a displacement with diagonal process noise
// variances.
func (m *Monitor) Move(displacement []float64, noiseVariances []float64) error {
	if len(displacement) != len(noiseVariances) {
		return fmt.Errorf("gaussrange: displacement dim %d vs noise dim %d",
			len(displacement), len(noiseVariances))
	}
	return m.inner.Move(vecmat.Vector(displacement), vecmat.Diagonal(noiseVariances...))
}

// Fix corrects the belief with a position measurement with diagonal noise
// variances.
func (m *Monitor) Fix(position []float64, noiseVariances []float64) error {
	if len(position) != len(noiseVariances) {
		return fmt.Errorf("gaussrange: position dim %d vs noise dim %d",
			len(position), len(noiseVariances))
	}
	return m.inner.Fix(vecmat.Vector(position), vecmat.Diagonal(noiseVariances...))
}

// StepDelta reports one monitoring epoch: objects entering and leaving the
// probabilistic range, plus the standing set size.
type StepDelta struct {
	Entered []int64
	Left    []int64
	Current int
}

// Step re-evaluates the standing query at the current belief. Steps that do
// not change the belief covariance reuse the compiled query plan, paying
// only an O(d) rebind to the new mean.
func (m *Monitor) Step() (*StepDelta, error) {
	return m.StepCtx(context.Background())
}

// StepCtx is Step with cancellation: a cancelled or expired ctx aborts the
// underlying query and returns ctx.Err().
func (m *Monitor) StepCtx(ctx context.Context) (*StepDelta, error) {
	res, err := m.inner.StepCtx(ctx)
	if err != nil {
		return nil, err
	}
	return &StepDelta{Entered: res.Entered, Left: res.Left, Current: res.Current}, nil
}

// PlanCompiles returns how many times the standing query's plan has been
// compiled; steps with an unchanged belief covariance reuse the last plan.
func (m *Monitor) PlanCompiles() int { return m.inner.PlanCompiles() }

// Current returns the standing answer set, ascending.
func (m *Monitor) Current() []int64 { return m.inner.Current() }

// Belief returns the current position belief mean and covariance.
func (m *Monitor) Belief() (mean []float64, cov [][]float64, err error) {
	b, err := m.inner.Belief()
	if err != nil {
		return nil, nil, err
	}
	mean = append([]float64(nil), b.Mean()...)
	d := b.Dim()
	cov = make([][]float64, d)
	for i := 0; i < d; i++ {
		cov[i] = make([]float64, d)
		for j := 0; j < d; j++ {
			cov[i][j] = b.Cov().At(i, j)
		}
	}
	return mean, cov, nil
}
