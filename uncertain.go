package gaussrange

import (
	"fmt"

	"gaussrange/internal/core"
	"gaussrange/internal/gauss"
	"gaussrange/internal/vecmat"
)

// UncertainDB stores objects whose own locations are Gaussian — the paper's
// future-work setting where both the query and the targets are imprecise.
// Each object i has mean means[i] and covariance covs[i] (nil = exact).
// Queries are answered exactly: the difference of independent Gaussians is
// Gaussian, so each object's qualification probability is a quadratic-form
// CDF with the summed covariance, evaluated by Ruben's series.
type UncertainDB struct {
	h   *core.HeteroIndex
	dim int
}

// LoadUncertain builds an uncertain-object database. covs may be nil
// (all objects exact) or must have one entry per object, where a nil entry
// marks an exact object.
func LoadUncertain(means [][]float64, covs [][][]float64) (*UncertainDB, error) {
	if len(means) == 0 {
		return nil, fmt.Errorf("gaussrange: LoadUncertain requires at least one object")
	}
	dim := len(means[0])
	if dim == 0 {
		return nil, fmt.Errorf("gaussrange: zero-dimensional objects")
	}
	if covs != nil && len(covs) != len(means) {
		return nil, fmt.Errorf("gaussrange: %d means but %d covariances", len(means), len(covs))
	}
	objs := make([]core.UncertainObject, len(means))
	for i, m := range means {
		if len(m) != dim {
			return nil, fmt.Errorf("gaussrange: object %d has dim %d, want %d", i, len(m), dim)
		}
		obj := core.UncertainObject{Mean: vecmat.Vector(m).Clone()}
		if covs != nil && covs[i] != nil {
			c, err := vecmat.FromRows(covs[i])
			if err != nil {
				return nil, fmt.Errorf("gaussrange: object %d covariance: %w", i, err)
			}
			obj.Cov = c
		}
		objs[i] = obj
	}
	h, err := core.NewHeteroIndexFromObjects(objs, dim)
	if err != nil {
		return nil, err
	}
	return &UncertainDB{h: h, dim: dim}, nil
}

// Len returns the number of stored objects.
func (u *UncertainDB) Len() int { return u.h.Len() }

// Dim returns the dimensionality.
func (u *UncertainDB) Dim() int { return u.dim }

// Query returns the ids of objects within distance Delta of the query
// object with probability at least Theta, accounting for both location
// uncertainties. The spec's Strategy and TargetCov fields are ignored (the
// per-object covariances fully specify target uncertainty here).
func (u *UncertainDB) Query(spec QuerySpec) ([]int64, error) {
	q, err := u.compile(spec)
	if err != nil {
		return nil, err
	}
	res, err := u.h.Search(q)
	if err != nil {
		return nil, err
	}
	return res.IDs, nil
}

// QueryProb returns the exact qualification probability of one object.
func (u *UncertainDB) QueryProb(spec QuerySpec, id int64) (float64, error) {
	q, err := u.compile(spec)
	if err != nil {
		return 0, err
	}
	return u.h.Qualification(q, id)
}

func (u *UncertainDB) compile(spec QuerySpec) (core.Query, error) {
	if len(spec.Center) != u.dim {
		return core.Query{}, fmt.Errorf("gaussrange: center dim %d vs db dim %d", len(spec.Center), u.dim)
	}
	cov, err := vecmat.FromRows(spec.Cov)
	if err != nil {
		return core.Query{}, err
	}
	g, err := gauss.New(vecmat.Vector(spec.Center), cov)
	if err != nil {
		return core.Query{}, err
	}
	return core.Query{Dist: g, Delta: spec.Delta, Theta: spec.Theta}, nil
}
