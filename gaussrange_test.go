package gaussrange

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func gridPoints(n int, spacing float64) [][]float64 {
	var pts [][]float64
	side := int(math.Sqrt(float64(n)))
	for i := 0; i < side; i++ {
		for j := 0; j < side; j++ {
			pts = append(pts, []float64{float64(i) * spacing, float64(j) * spacing})
		}
	}
	return pts
}

func paperCov(gamma float64) [][]float64 {
	s := 2 * math.Sqrt(3) * gamma
	return [][]float64{{7 * gamma, s}, {s, 3 * gamma}}
}

func TestLoadValidation(t *testing.T) {
	if _, err := Load(nil); err == nil {
		t.Error("empty Load accepted")
	}
	if _, err := Load([][]float64{{}}); err == nil {
		t.Error("zero-dim points accepted")
	}
	if _, err := Load([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("ragged points accepted")
	}
	if _, err := Load(gridPoints(100, 10), WithPageSize(10)); err == nil {
		t.Error("tiny page size accepted")
	}
	if _, err := Load(gridPoints(100, 10), WithMonteCarlo(0)); err == nil {
		t.Error("zero MC samples accepted")
	}
	if _, err := Open(0); err == nil {
		t.Error("Open(0) accepted")
	}
}

func TestOpenInsertQuery(t *testing.T) {
	db, err := Open(2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		if _, err := db.Insert([]float64{rng.Float64() * 1000, rng.Float64() * 1000}); err != nil {
			t.Fatal(err)
		}
	}
	if db.Len() != 2000 || db.Dim() != 2 {
		t.Fatalf("Len/Dim = %d/%d", db.Len(), db.Dim())
	}
	res, err := db.Query(QuerySpec{
		Center: []float64{500, 500},
		Cov:    paperCov(10),
		Delta:  25,
		Theta:  0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Retrieved == 0 {
		t.Error("query retrieved nothing on a dense dataset")
	}
	for i := 1; i < len(res.IDs); i++ {
		if res.IDs[i] <= res.IDs[i-1] {
			t.Fatal("ids not strictly ascending")
		}
	}
}

func TestQueryStrategiesAgree(t *testing.T) {
	db, err := Load(gridPoints(10000, 10))
	if err != nil {
		t.Fatal(err)
	}
	spec := QuerySpec{
		Center: []float64{500, 500},
		Cov:    paperCov(10),
		Delta:  25,
		Theta:  0.01,
	}
	var first []int64
	for i, strat := range []string{"RR", "BF", "RR+BF", "RR+OR", "BF+OR", "ALL", ""} {
		spec.Strategy = strat
		res, err := db.Query(spec)
		if err != nil {
			t.Fatalf("%q: %v", strat, err)
		}
		if i == 0 {
			first = res.IDs
			continue
		}
		if len(res.IDs) != len(first) {
			t.Fatalf("%q returned %d answers, RR returned %d", strat, len(res.IDs), len(first))
		}
		for j := range first {
			if res.IDs[j] != first[j] {
				t.Fatalf("%q answers differ from RR", strat)
			}
		}
	}
	spec.Strategy = "bogus"
	if _, err := db.Query(spec); err == nil {
		t.Error("bogus strategy accepted")
	}
	spec.Strategy = "OR"
	if _, err := db.Query(spec); err == nil {
		t.Error("OR-only strategy accepted")
	}
}

func TestQueryValidation(t *testing.T) {
	db, err := Load(gridPoints(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	bad := []QuerySpec{
		{Center: []float64{1}, Cov: paperCov(1), Delta: 5, Theta: 0.1},
		{Center: []float64{1, 2}, Cov: [][]float64{{1, 0}}, Delta: 5, Theta: 0.1},
		{Center: []float64{1, 2}, Cov: [][]float64{{1, 2}, {3, 4}}, Delta: 5, Theta: 0.1},
		{Center: []float64{1, 2}, Cov: paperCov(1), Delta: 0, Theta: 0.1},
		{Center: []float64{1, 2}, Cov: paperCov(1), Delta: 5, Theta: 0},
	}
	for i, spec := range bad {
		if _, err := db.Query(spec); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestMonteCarloOption(t *testing.T) {
	db, err := Load(gridPoints(2500, 20), WithMonteCarlo(20000), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	exactDB, err := Load(gridPoints(2500, 20))
	if err != nil {
		t.Fatal(err)
	}
	spec := QuerySpec{Center: []float64{500, 500}, Cov: paperCov(10), Delta: 25, Theta: 0.01}
	mcRes, err := db.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	exRes, err := exactDB.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Grid points are well separated from the θ boundary at this spacing;
	// MC and exact should agree exactly here.
	if len(mcRes.IDs) != len(exRes.IDs) {
		t.Errorf("MC answers %d vs exact %d", len(mcRes.IDs), len(exRes.IDs))
	}
}

func TestCatalogOption(t *testing.T) {
	db, err := Load(gridPoints(2500, 20), WithCatalogs())
	if err != nil {
		t.Fatal(err)
	}
	exactDB, err := Load(gridPoints(2500, 20))
	if err != nil {
		t.Fatal(err)
	}
	spec := QuerySpec{Center: []float64{500, 500}, Cov: paperCov(10), Delta: 25, Theta: 0.01}
	catRes, err := db.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	exRes, err := exactDB.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(catRes.IDs) != len(exRes.IDs) {
		t.Errorf("catalog answers %d vs exact %d", len(catRes.IDs), len(exRes.IDs))
	}
	if catRes.Stats.Integrations < exRes.Stats.Integrations {
		t.Errorf("catalog mode integrated fewer (%d) than exact (%d) — catalog must be conservative",
			catRes.Stats.Integrations, exRes.Stats.Integrations)
	}
}

func TestQueryProb(t *testing.T) {
	db, err := Load([][]float64{{500, 500}, {800, 800}})
	if err != nil {
		t.Fatal(err)
	}
	spec := QuerySpec{Center: []float64{500, 500}, Cov: paperCov(1), Delta: 25, Theta: 0.5}
	p, err := db.QueryProb(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.99 {
		t.Errorf("probability at the query center = %g, want ≈1", p)
	}
	p, err = db.QueryProb(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-12 {
		t.Errorf("probability of a distant point = %g, want ≈0", p)
	}
	if _, err := db.QueryProb(spec, 99); err == nil {
		t.Error("out-of-range id accepted")
	}
}

func TestRangeSearchAndKNN(t *testing.T) {
	db, err := Load(gridPoints(10000, 10))
	if err != nil {
		t.Fatal(err)
	}
	ids, err := db.RangeSearch([]float64{505, 505}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 4 {
		t.Errorf("RangeSearch found %d, want the 4 surrounding grid points", len(ids))
	}
	nn, err := db.NearestNeighbors([]float64{501, 500}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(nn) != 3 {
		t.Fatalf("kNN returned %d", len(nn))
	}
	if math.Abs(nn[0].Distance-1) > 1e-12 {
		t.Errorf("nearest distance = %g, want 1", nn[0].Distance)
	}
	p, err := db.Point(nn[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if p[0] != 500 || p[1] != 500 {
		t.Errorf("nearest point = %v", p)
	}
}

func TestStatsExposed(t *testing.T) {
	db, err := Load(gridPoints(10000, 10))
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(QuerySpec{
		Center: []float64{500, 500}, Cov: paperCov(10), Delta: 25, Theta: 0.01,
		Strategy: "ALL",
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Retrieved != st.PrunedFringe+st.PrunedOR+st.PrunedBF+st.AcceptedBF+st.Integrations {
		t.Errorf("stats do not account for all candidates: %+v", st)
	}
	if st.NodesRead == 0 {
		t.Error("NodesRead missing")
	}
}

func TestPublicPNN(t *testing.T) {
	db, err := Load([][]float64{{0, 0}, {100, 100}, {2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.PNN([]float64{1, 1}, [][]float64{{0.1, 0}, {0, 0.1}}, 0.05, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("PNN empty")
	}
	var total float64
	for _, r := range res {
		total += r.Probability
	}
	if total > 1.000001 {
		t.Errorf("probabilities sum to %g", total)
	}
	if _, err := db.PNN([]float64{1}, [][]float64{{1}}, 0.1, 100); err == nil {
		t.Error("dim mismatch accepted")
	}
}

func TestPublicQueryParallel(t *testing.T) {
	db, err := Load(gridPoints(10000, 10))
	if err != nil {
		t.Fatal(err)
	}
	spec := QuerySpec{Center: []float64{500, 500}, Cov: paperCov(10), Delta: 25, Theta: 0.01}
	serial, err := db.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	par, err := db.QueryParallel(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.IDs) != len(par.IDs) {
		t.Fatalf("parallel %d vs serial %d", len(par.IDs), len(serial.IDs))
	}
	for i := range serial.IDs {
		if serial.IDs[i] != par.IDs[i] {
			t.Fatal("parallel ids differ")
		}
	}
	// MC-backed parallel query exercises MCEvaluator forking.
	mcDB, err := Load(gridPoints(2500, 20), WithMonteCarlo(5000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mcDB.QueryParallel(spec, 4); err != nil {
		t.Fatal(err)
	}
}

func TestQueryParallelCtxCancellation(t *testing.T) {
	db, err := Load(gridPoints(10000, 10))
	if err != nil {
		t.Fatal(err)
	}
	spec := QuerySpec{Center: []float64{500, 500}, Cov: paperCov(10), Delta: 25, Theta: 0.01}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryParallelCtx(ctx, spec, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled parallel query returned %v, want context.Canceled", err)
	}
	res, err := db.QueryParallelCtx(context.Background(), spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := db.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.IDs, res.IDs) {
		t.Fatal("parallel-with-context ids differ from serial")
	}
}

// TestUncertainTargets: widening the query covariance by the target error
// must equal querying with the summed covariance directly, and a Monte Carlo
// simulation of jittered targets must agree with the analytic answer.
func TestUncertainTargets(t *testing.T) {
	db, err := Load(gridPoints(2500, 20))
	if err != nil {
		t.Fatal(err)
	}
	base := QuerySpec{Center: []float64{500, 500}, Cov: paperCov(5), Delta: 25, Theta: 0.05}
	withTargets := base
	withTargets.TargetCov = [][]float64{{30, 0}, {0, 30}}

	summed := base
	summed.Cov = [][]float64{
		{base.Cov[0][0] + 30, base.Cov[0][1]},
		{base.Cov[1][0], base.Cov[1][1] + 30},
	}

	r1, err := db.Query(withTargets)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := db.Query(summed)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.IDs) != len(r2.IDs) {
		t.Fatalf("TargetCov %d answers vs summed-cov %d", len(r1.IDs), len(r2.IDs))
	}
	for i := range r1.IDs {
		if r1.IDs[i] != r2.IDs[i] {
			t.Fatal("TargetCov answers differ from summed covariance")
		}
	}
	// Target uncertainty must change the result vs the certain-target query
	// for at least one boundary point (sanity that the knob does something).
	r0, err := db.Query(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(r0.IDs) == len(r1.IDs) {
		same := true
		for i := range r0.IDs {
			if r0.IDs[i] != r1.IDs[i] {
				same = false
				break
			}
		}
		if same {
			t.Log("warning: target uncertainty did not change this particular answer set")
		}
	}
	// Invalid target covariance is rejected.
	bad := base
	bad.TargetCov = [][]float64{{1, 2}, {3, 4}}
	if _, err := db.Query(bad); err == nil {
		t.Error("asymmetric target covariance accepted")
	}
}

// TestOneDimensional exercises the full pipeline at d=1, where the paper
// calls the problem trivial; the general machinery must still be exact.
func TestOneDimensional(t *testing.T) {
	pts := make([][]float64, 0, 1000)
	for i := 0; i < 1000; i++ {
		pts = append(pts, []float64{float64(i)})
	}
	db, err := Load(pts)
	if err != nil {
		t.Fatal(err)
	}
	spec := QuerySpec{Center: []float64{500.2}, Cov: [][]float64{{16}}, Delta: 10, Theta: 0.3}
	res, err := db.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Closed form: Pr(|x−o| ≤ δ) = Φ((o+δ−q)/σ) − Φ((o−δ−q)/σ), σ=4.
	phi := func(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }
	var want []int64
	for i := range pts {
		o := pts[i][0]
		p := phi((o+10-500.2)/4) - phi((o-10-500.2)/4)
		if p >= 0.3 {
			want = append(want, int64(i))
		}
	}
	if len(res.IDs) != len(want) {
		t.Fatalf("1-D answers %d, closed form %d", len(res.IDs), len(want))
	}
	for i := range want {
		if res.IDs[i] != want[i] {
			t.Fatal("1-D answer set differs from closed form")
		}
	}
}

// TestConcurrentInsertAndQuery exercises the DB's locking: concurrent
// inserts and queries must not race or corrupt the index (run with -race).
func TestConcurrentInsertAndQuery(t *testing.T) {
	db, err := Load(gridPoints(2500, 20))
	if err != nil {
		t.Fatal(err)
	}
	spec := QuerySpec{Center: []float64{500, 500}, Cov: paperCov(5), Delta: 25, Theta: 0.05}
	done := make(chan error, 8)
	for w := 0; w < 4; w++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				if _, err := db.Insert([]float64{rng.Float64() * 1000, rng.Float64() * 1000}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(int64(w))
		go func() {
			for i := 0; i < 20; i++ {
				if _, err := db.Query(spec); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if db.Len() != 2500+200 {
		t.Errorf("Len = %d after concurrent inserts", db.Len())
	}
	if err := db.idx.Tree().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveMonteCarloOption(t *testing.T) {
	db, err := Load(gridPoints(2500, 20), WithAdaptiveMonteCarlo(100000), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	exactDB, err := Load(gridPoints(2500, 20))
	if err != nil {
		t.Fatal(err)
	}
	spec := QuerySpec{Center: []float64{500, 500}, Cov: paperCov(10), Delta: 25, Theta: 0.01}
	a, err := db.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := exactDB.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.IDs) != len(b.IDs) {
		t.Errorf("adaptive answers %d vs exact %d", len(a.IDs), len(b.IDs))
	}
	if _, err := Load(gridPoints(100, 10), WithAdaptiveMonteCarlo(10)); err == nil {
		t.Error("tiny adaptive budget accepted")
	}
}

func TestAutoStrategy(t *testing.T) {
	db, err := Load(gridPoints(2500, 20))
	if err != nil {
		t.Fatal(err)
	}
	spec := QuerySpec{Center: []float64{500, 500}, Cov: paperCov(10), Delta: 25, Theta: 0.01, Strategy: "AUTO"}
	auto, err := db.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Strategy = "ALL"
	all, err := db.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(auto.IDs) != len(all.IDs) {
		t.Errorf("AUTO %d vs ALL %d answers", len(auto.IDs), len(all.IDs))
	}
	// Spherical covariance routes to BF: all candidates decided without
	// integration.
	spec2 := QuerySpec{Center: []float64{500, 500}, Cov: [][]float64{{50, 0}, {0, 50}}, Delta: 25, Theta: 0.05, Strategy: "AUTO"}
	res, err := db.Query(spec2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Integrations > 2 {
		t.Errorf("AUTO on spherical Σ still integrated %d", res.Stats.Integrations)
	}
}
