package gaussrange

import (
	"container/list"
	"encoding/binary"
	"math"
	"strings"
	"sync"

	"gaussrange/internal/core"
	"gaussrange/internal/vecmat"
)

// DefaultPlanCacheSize is the number of compiled query plans a DB retains.
const DefaultPlanCacheSize = 128

// planCache is a small LRU of compiled query plans keyed by the query-shape
// fingerprint (Σ, δ, θ, strategy). Compilation — the Σ eigendecomposition
// and the noncentral-χ² inversions behind rθ and the BF radii — depends only
// on that shape, never on the query mean, so repeated and standing queries
// (monitors, benchmark loops, per-user standing filters) hit the cache and
// pay only an O(d) mean rebind.
type planCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used

	hits, misses uint64
}

type planCacheEntry struct {
	key  string
	plan *core.Plan
}

func newPlanCache(capacity int) *planCache {
	return &planCache{
		cap:     capacity,
		entries: make(map[string]*list.Element, capacity),
		order:   list.New(),
	}
}

// get returns the cached plan for key, promoting it to most-recently-used.
func (c *planCache) get(key string) (*core.Plan, bool) {
	if c == nil || c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*planCacheEntry).plan, true
}

// put inserts (or refreshes) a compiled plan, evicting the least recently
// used entry beyond capacity.
func (c *planCache) put(key string, p *core.Plan) {
	if c == nil || c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*planCacheEntry).plan = p
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&planCacheEntry{key: key, plan: p})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*planCacheEntry).key)
	}
}

// stats returns the cumulative hit/miss counters.
func (c *planCache) stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// planKey fingerprints the compile-relevant query shape: dimensionality, the
// exact covariance bytes (TargetCov already folded in), δ, θ, and the
// normalized strategy name. The mean is deliberately excluded — plans are
// mean-independent up to an O(d) rebind.
func planKey(cov *vecmat.Symmetric, delta, theta float64, strategy string) string {
	d := cov.Dim()
	buf := make([]byte, 0, 8*(d*d+3))
	var scratch [8]byte
	put := func(v float64) {
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(v))
		buf = append(buf, scratch[:]...)
	}
	put(float64(d))
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			put(cov.At(i, j))
		}
	}
	put(delta)
	put(theta)
	return string(buf) + "|" + strings.ToUpper(strings.TrimSpace(strategy))
}
