package gaussrange

import (
	"context"
	"testing"
)

func TestPhase3KernelValidation(t *testing.T) {
	pts := gridPoints(100, 10)
	if _, err := Load(pts, WithPhase3Kernel(Phase3Kernel(99))); err == nil {
		t.Error("unknown kernel accepted")
	}
	if _, err := Load(pts, WithPhase3Kernel(Phase3Kernel(-1))); err == nil {
		t.Error("negative kernel accepted")
	}
	if _, err := Load(pts, WithAdaptiveMonteCarlo(1000), WithPhase3Kernel(KernelSharedGrid)); err == nil {
		t.Error("shared kernel combined with adaptive MC accepted")
	}
	if _, err := Load(pts, WithAdaptiveMonteCarlo(1000), WithPhase3Kernel(KernelSharedEarly)); err == nil {
		t.Error("early kernel combined with adaptive MC accepted")
	}
	if _, err := Load(pts, WithAdaptiveMonteCarlo(1000), WithPhase3Kernel(KernelTiered)); err == nil {
		t.Error("tiered kernel combined with adaptive MC accepted")
	}
	if _, err := Load(pts, WithAdaptiveMonteCarlo(1000), WithPhase3Kernel(KernelSharedBatch)); err == nil {
		t.Error("batch kernel combined with adaptive MC accepted")
	}
	if _, err := Load(pts, WithPhase3Kernel(KernelSharedEarly)); err != nil {
		t.Errorf("early kernel rejected: %v", err)
	}
	// The explicit default combines with anything.
	if _, err := Load(pts, WithAdaptiveMonteCarlo(1000), WithPhase3Kernel(KernelPerCandidate)); err != nil {
		t.Errorf("per-candidate kernel with adaptive MC rejected: %v", err)
	}
}

func TestPhase3KernelStrings(t *testing.T) {
	for k, want := range map[Phase3Kernel]string{
		KernelPerCandidate: "per-candidate",
		KernelSharedFlat:   "shared-flat",
		KernelSharedGrid:   "shared-grid",
		KernelSharedEarly:  "shared-early",
		KernelTiered:       "tiered",
		KernelSharedBatch:  "shared-batch",
	} {
		if got := k.String(); got != want {
			t.Errorf("kernel %d String() = %q, want %q", int(k), got, want)
		}
	}
}

// TestParsePhase3Kernel: every kernel round-trips through its String() name,
// and unknown names are rejected with the valid set in the message.
func TestParsePhase3Kernel(t *testing.T) {
	for _, k := range []Phase3Kernel{
		KernelPerCandidate, KernelSharedFlat, KernelSharedGrid, KernelSharedEarly, KernelTiered, KernelSharedBatch,
	} {
		got, err := ParsePhase3Kernel(k.String())
		if err != nil {
			t.Errorf("ParsePhase3Kernel(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("ParsePhase3Kernel(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := ParsePhase3Kernel("bogus"); err == nil {
		t.Error("unknown kernel name accepted")
	}
}

// TestTieredKernelQuery drives the tiered kernel through the public API: on
// the paper workload the analytic tiers close everything, so the answer must
// be byte-identical to the exact evaluator's, the tier mix must account for
// every integration, and no Monte Carlo samples may be drawn.
func TestTieredKernelQuery(t *testing.T) {
	pts := gridPoints(2500, 20)
	spec := QuerySpec{Center: []float64{500, 500}, Cov: paperCov(10), Delta: 25, Theta: 0.01}

	exactDB, err := Load(pts)
	if err != nil {
		t.Fatal(err)
	}
	exRes, err := exactDB.Query(spec)
	if err != nil {
		t.Fatal(err)
	}

	db, err := Load(pts, WithMonteCarlo(20000), WithSeed(7), WithPhase3Kernel(KernelTiered))
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != len(exRes.IDs) {
		t.Fatalf("tiered %d answers vs exact %d", len(res.IDs), len(exRes.IDs))
	}
	for i := range res.IDs {
		if res.IDs[i] != exRes.IDs[i] {
			t.Fatalf("tiered and exact answers disagree at position %d", i)
		}
	}
	st := res.Stats
	bf, env, exact, mcc := st.TierMix()
	if got := bf + env + exact + mcc; got != st.Integrations {
		t.Errorf("tier mix sums to %d, want Integrations=%d", got, st.Integrations)
	}
	if st.SampleFreeDecisions() != bf+env+exact {
		t.Errorf("SampleFreeDecisions() = %d, want %d", st.SampleFreeDecisions(), bf+env+exact)
	}
	if mcc == 0 && st.SamplesDrawn != 0 {
		t.Errorf("no MC-tier decisions but SamplesDrawn = %d", st.SamplesDrawn)
	}
	if bf+env+exact == 0 && st.Integrations > 0 {
		t.Error("tiered kernel closed nothing analytically on the paper workload")
	}

	// Determinism: re-running the same query and re-loading under a different
	// seed must reproduce the answer bit-for-bit when no MC tier fired.
	if mcc == 0 {
		db2, err := Load(pts, WithMonteCarlo(20000), WithSeed(999), WithPhase3Kernel(KernelTiered))
		if err != nil {
			t.Fatal(err)
		}
		res2, err := db2.Query(spec)
		if err != nil {
			t.Fatal(err)
		}
		if len(res2.IDs) != len(res.IDs) {
			t.Fatalf("seed changed tiered answer count: %d vs %d", len(res2.IDs), len(res.IDs))
		}
		for i := range res.IDs {
			if res2.IDs[i] != res.IDs[i] {
				t.Fatalf("seed changed tiered answers at position %d", i)
			}
		}
	}
}

// TestPhase3KernelQuery drives the shared kernels through the public API:
// flat and grid must answer identically for the same seed, report the cloud
// accounting in Stats, and agree with the exact evaluator on a workload whose
// probabilities sit far from θ.
func TestPhase3KernelQuery(t *testing.T) {
	pts := gridPoints(2500, 20)
	spec := QuerySpec{Center: []float64{500, 500}, Cov: paperCov(10), Delta: 25, Theta: 0.01}

	exactDB, err := Load(pts)
	if err != nil {
		t.Fatal(err)
	}
	exRes, err := exactDB.Query(spec)
	if err != nil {
		t.Fatal(err)
	}

	var flatIDs []int64
	for _, kernel := range []Phase3Kernel{KernelSharedFlat, KernelSharedGrid, KernelSharedEarly} {
		db, err := Load(pts, WithMonteCarlo(20000), WithSeed(7), WithPhase3Kernel(kernel))
		if err != nil {
			t.Fatal(err)
		}
		res, err := db.Query(spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.SamplesDrawn != 20000 {
			t.Errorf("%v: SamplesDrawn = %d, want 20000", kernel, res.Stats.SamplesDrawn)
		}
		if res.Stats.Integrations > 0 && res.Stats.SamplesTouched == 0 {
			t.Errorf("%v: SamplesTouched = 0 with %d integrations", kernel, res.Stats.Integrations)
		}
		// Grid points sit far from the θ boundary at this spacing, so the
		// sampled answer must match the exact one outright.
		if len(res.IDs) != len(exRes.IDs) {
			t.Errorf("%v: %d answers vs exact %d", kernel, len(res.IDs), len(exRes.IDs))
		}
		if res.Stats.GridFallback {
			t.Errorf("%v: unexpected grid fallback at paper-scale δ", kernel)
		}
		if kernel == KernelSharedEarly && res.Stats.EarlyDecisions == 0 && res.Stats.Integrations > 0 {
			t.Error("early kernel decided nothing early")
		}
		if kernel == KernelSharedFlat {
			flatIDs = res.IDs
			continue
		}
		if len(flatIDs) != len(res.IDs) {
			t.Fatalf("flat %d answers vs %v %d", len(flatIDs), kernel, len(res.IDs))
		}
		for i := range flatIDs {
			if flatIDs[i] != res.IDs[i] {
				t.Fatalf("flat and %v kernels disagree at position %d", kernel, i)
			}
		}
	}
}

// TestStrategyIdentityAcrossKernels is the acceptance bar for the early-exit
// kernel: under all six strategy configurations from the paper's evaluation,
// the three shared kernels return byte-identical answer IDs, and both they
// and the per-candidate Monte Carlo kernel agree with the exact evaluator on
// a workload whose probabilities sit far from θ (so MC noise cannot flip an
// answer).
func TestStrategyIdentityAcrossKernels(t *testing.T) {
	pts := gridPoints(2500, 20)
	spec := func(strategy string) QuerySpec {
		return QuerySpec{
			Center:   []float64{500, 500},
			Cov:      paperCov(10),
			Delta:    25,
			Theta:    0.01,
			Strategy: strategy,
		}
	}
	exactDB, err := Load(pts)
	if err != nil {
		t.Fatal(err)
	}
	perCandDB, err := Load(pts, WithMonteCarlo(30000), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	sharedKernels := []Phase3Kernel{KernelSharedFlat, KernelSharedGrid, KernelSharedEarly, KernelTiered, KernelSharedBatch}
	sharedDBs := make([]*DB, len(sharedKernels))
	for i, kernel := range sharedKernels {
		db, err := Load(pts, WithMonteCarlo(30000), WithSeed(7), WithPhase3Kernel(kernel))
		if err != nil {
			t.Fatal(err)
		}
		sharedDBs[i] = db
	}

	idsOf := func(db *DB, s string) []int64 {
		t.Helper()
		res, err := db.Query(spec(s))
		if err != nil {
			t.Fatalf("strategy %s: %v", s, err)
		}
		return res.IDs
	}
	same := func(a, b []int64) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	for _, s := range liveStrategies {
		exact := idsOf(exactDB, s)
		if len(exact) == 0 {
			t.Fatalf("strategy %s: empty exact answer makes the identity check vacuous", s)
		}
		if got := idsOf(perCandDB, s); !same(got, exact) {
			t.Errorf("strategy %s: per-candidate MC %v != exact %v", s, got, exact)
		}
		flat := idsOf(sharedDBs[0], s)
		for i, kernel := range sharedKernels {
			got := idsOf(sharedDBs[i], s)
			if !same(got, flat) {
				t.Errorf("strategy %s: %v IDs %v != shared-flat %v", s, kernel, got, flat)
			}
			if !same(got, exact) {
				t.Errorf("strategy %s: %v IDs %v != exact %v", s, kernel, got, exact)
			}
		}
	}
}

// TestPhase3KernelDeterministicAcrossWorkers checks the public guarantee: one
// DB with a shared kernel returns identical IDs whether a query runs alone or
// inside a QueryBatch at any pool size.
func TestPhase3KernelDeterministicAcrossWorkers(t *testing.T) {
	pts := gridPoints(2500, 20)
	db, err := Load(pts, WithMonteCarlo(20000), WithSeed(7), WithPhase3Kernel(KernelSharedGrid))
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]QuerySpec, 8)
	for i := range specs {
		specs[i] = QuerySpec{
			Center: []float64{200 + 50*float64(i), 500},
			Cov:    paperCov(10),
			Delta:  25,
			Theta:  0.01,
		}
	}
	ctx := context.Background()
	want := make([][]int64, len(specs))
	for i, spec := range specs {
		res, err := db.QueryCtx(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.IDs
	}
	for _, workers := range []int{1, 4, 8} {
		results, err := db.QueryBatch(ctx, specs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, res := range results {
			if len(res.IDs) != len(want[i]) {
				t.Fatalf("workers=%d query %d: %d answers, want %d", workers, i, len(res.IDs), len(want[i]))
			}
			for j := range want[i] {
				if res.IDs[j] != want[i][j] {
					t.Fatalf("workers=%d query %d: IDs diverge at %d", workers, i, j)
				}
			}
		}
	}
}
