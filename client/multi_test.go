package client_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gaussrange/client"
)

func TestMultiEndpointsAndAt(t *testing.T) {
	var hits [3]atomic.Int64
	var servers []*httptest.Server
	var urls []string
	for i := 0; i < 3; i++ {
		i := i
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits[i].Add(1)
			fmt.Fprint(w, `{"status":"ok","points":0,"dim":2,"epoch":1,"max_id":0}`)
		}))
		defer ts.Close()
		servers = append(servers, ts)
		urls = append(urls, ts.URL)
	}
	m, err := client.NewMulti(urls)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 3 {
		t.Fatalf("Len = %d", m.Len())
	}
	got := m.Endpoints()
	for i, u := range urls {
		if got[i] != u {
			t.Fatalf("endpoint %d: %s vs %s", i, got[i], u)
		}
	}
	// At(i) is the per-request endpoint override: each call goes only to the
	// addressed shard.
	if _, err := m.At(1).Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if hits[0].Load() != 0 || hits[1].Load() != 1 || hits[2].Load() != 0 {
		t.Fatalf("hits %d %d %d, want only shard 1", hits[0].Load(), hits[1].Load(), hits[2].Load())
	}
}

func TestNewMultiRejectsEmpty(t *testing.T) {
	if _, err := client.NewMulti(nil); err == nil {
		t.Fatal("empty endpoint list accepted")
	}
}

func TestScatterBoundedConcurrency(t *testing.T) {
	m, err := client.NewMulti([]string{"http://s0", "http://s1", "http://s2", "http://s3", "http://s4", "http://s5"})
	if err != nil {
		t.Fatal(err)
	}
	var cur, peak atomic.Int64
	errs := m.Scatter(context.Background(), []int{0, 1, 2, 3, 4, 5}, 2,
		func(ctx context.Context, shard int, c *client.Client) error {
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(5 * time.Millisecond)
			cur.Add(-1)
			if shard == 3 {
				return fmt.Errorf("boom %d", shard)
			}
			return nil
		})
	if peak.Load() > 2 {
		t.Fatalf("concurrency peaked at %d with limit 2", peak.Load())
	}
	// Errors align with the targets slice; one failure doesn't cancel the rest.
	for i, e := range errs {
		if i == 3 && e == nil {
			t.Fatal("shard 3 error lost")
		}
		if i != 3 && e != nil {
			t.Fatalf("shard %d: unexpected error %v", i, e)
		}
	}
}

func TestScatterContextCancel(t *testing.T) {
	m, err := client.NewMulti([]string{"http://s0", "http://s1", "http://s2"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var started sync.WaitGroup
	started.Add(1)
	var once sync.Once
	errs := m.Scatter(ctx, []int{0, 1, 2}, 1,
		func(ctx context.Context, shard int, c *client.Client) error {
			once.Do(func() {
				cancel()
				started.Done()
			})
			return ctx.Err()
		})
	started.Wait()
	canceled := 0
	for _, e := range errs {
		if errors.Is(e, context.Canceled) {
			canceled++
		}
	}
	if canceled == 0 {
		t.Fatal("cancellation not propagated to scattered calls")
	}
}

func TestMultiRetrySemanticsPerShard(t *testing.T) {
	// Reads conn-retry per shard; a flaky shard that fails once then recovers
	// succeeds through the Multi with WithRetries, without touching peers.
	var flakyCalls, peerCalls atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if flakyCalls.Add(1) == 1 {
			conn, _, _ := w.(http.Hijacker).Hijack()
			conn.Close() // connection error → retryable for reads
			return
		}
		fmt.Fprint(w, `{"status":"ok","points":0,"dim":2,"epoch":1,"max_id":0}`)
	}))
	defer flaky.Close()
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		peerCalls.Add(1)
		fmt.Fprint(w, `{"status":"ok","points":0,"dim":2,"epoch":1,"max_id":0}`)
	}))
	defer peer.Close()

	m, err := client.NewMulti([]string{flaky.URL, peer.URL},
		client.WithRetries(2), client.WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.At(0).Health(context.Background()); err != nil {
		t.Fatalf("read retry not applied per shard: %v", err)
	}
	if flakyCalls.Load() != 2 || peerCalls.Load() != 0 {
		t.Fatalf("flaky=%d peer=%d, want 2/0", flakyCalls.Load(), peerCalls.Load())
	}

	// Mutations must NOT conn-retry (the first attempt may have applied).
	flakyCalls.Store(0)
	if _, _, err := m.At(0).InsertPoints(context.Background(), [][]float64{{1, 2}}); err == nil {
		t.Fatal("mutation through dropped connection reported success")
	}
	if flakyCalls.Load() != 1 {
		t.Fatalf("mutation attempted %d times, want exactly 1", flakyCalls.Load())
	}
}
