package client

import (
	"context"
	"fmt"
	"sync"
)

// Multi addresses a fixed set of prqserved endpoints — typically the shards
// of one partitioned deployment. Each endpoint gets its own Client built with
// the same options, so the single-endpoint semantics carry over unchanged
// per shard: reads retry on connection errors, mutations never do (a torn
// connection to shard i must not re-apply the batch there), and 429 retries
// follow WithRetryOn429. Safe for concurrent use.
type Multi struct {
	clients []*Client
	bases   []string
}

// NewMulti returns a Multi over the given base URLs, applying opts to every
// per-endpoint Client.
func NewMulti(baseURLs []string, opts ...Option) (*Multi, error) {
	if len(baseURLs) == 0 {
		return nil, fmt.Errorf("client: NewMulti requires at least one endpoint")
	}
	m := &Multi{
		clients: make([]*Client, len(baseURLs)),
		bases:   make([]string, len(baseURLs)),
	}
	for i, u := range baseURLs {
		if u == "" {
			return nil, fmt.Errorf("client: endpoint %d is empty", i)
		}
		m.clients[i] = New(u, opts...)
		m.bases[i] = m.clients[i].base
	}
	return m, nil
}

// Len returns the number of endpoints.
func (m *Multi) Len() int { return len(m.clients) }

// At returns the Client for endpoint i — the per-request endpoint override:
// every typed Client method (Query, InsertPointsWithIDs, DeletePoint, …) is
// available against exactly that endpoint with the usual retry semantics.
func (m *Multi) At(i int) *Client {
	if i < 0 || i >= len(m.clients) {
		panic(fmt.Sprintf("client: endpoint index %d out of range [0, %d)", i, len(m.clients)))
	}
	return m.clients[i]
}

// Endpoints returns the normalized base URLs, aligned with At indices.
func (m *Multi) Endpoints() []string {
	return append([]string(nil), m.bases...)
}

// Scatter invokes fn once per index in targets with at most limit calls in
// flight (limit ≤ 0 means all at once). Errors align with targets; a nil
// entry is a success. Scatter itself never fails — the caller decides the
// partial-failure policy from the error slice. fn receives the target's
// Client, so reads and mutations keep their per-endpoint retry rules.
func (m *Multi) Scatter(ctx context.Context, targets []int, limit int, fn func(ctx context.Context, shard int, c *Client) error) []error {
	errs := make([]error, len(targets))
	if len(targets) == 0 {
		return errs
	}
	if limit <= 0 || limit > len(targets) {
		limit = len(targets)
	}
	sem := make(chan struct{}, limit)
	var wg sync.WaitGroup
	for i, shard := range targets {
		if shard < 0 || shard >= len(m.clients) {
			errs[i] = fmt.Errorf("client: endpoint index %d out of range [0, %d)", shard, len(m.clients))
			continue
		}
		wg.Add(1)
		go func(i, shard int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			errs[i] = fn(ctx, shard, m.clients[shard])
		}(i, shard)
	}
	wg.Wait()
	return errs
}
