package client

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"gaussrange"
	"gaussrange/server"
)

func okHandler(t *testing.T, check func(req server.QueryRequest)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req server.QueryRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("decoding request: %v", err)
		}
		if check != nil {
			check(req)
		}
		json.NewEncoder(w).Encode(server.QueryResponse{IDs: []int64{1, 2}})
	}
}

func testQuerySpec() gaussrange.QuerySpec {
	return gaussrange.QuerySpec{
		Center: []float64{1, 2},
		Cov:    [][]float64{{1, 0}, {0, 1}},
		Delta:  1,
		Theta:  0.5,
	}
}

// flakyTransport fails the first `failures` round trips with a connection
// error, then delegates to the real transport.
type flakyTransport struct {
	failures int32
	err      error
	inner    http.RoundTripper
	calls    atomic.Int32
}

func (f *flakyTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if f.calls.Add(1) <= f.failures {
		return nil, f.err
	}
	return f.inner.RoundTrip(r)
}

// TestRetriesConnectionErrors proves a request that fails twice with a
// connection error succeeds on the third attempt.
func TestRetriesConnectionErrors(t *testing.T) {
	ts := httptest.NewServer(okHandler(t, nil))
	defer ts.Close()

	ft := &flakyTransport{
		failures: 2,
		err:      &net.OpError{Op: "dial", Net: "tcp", Err: syscall.ECONNREFUSED},
		inner:    http.DefaultTransport,
	}
	cl := New(ts.URL,
		WithHTTPClient(&http.Client{Transport: ft}),
		WithRetries(2),
		WithRetryBackoff(time.Millisecond))
	res, err := cl.Query(context.Background(), testQuerySpec())
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if got := ft.calls.Load(); got != 3 {
		t.Errorf("round trips = %d, want 3", got)
	}
	if len(res.IDs) != 2 {
		t.Errorf("IDs = %v", res.IDs)
	}
}

// TestRetriesExhausted proves the client gives up after retries+1 attempts
// and surfaces the connection error.
func TestRetriesExhausted(t *testing.T) {
	ft := &flakyTransport{
		failures: 100,
		err:      &net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET},
		inner:    http.DefaultTransport,
	}
	cl := New("http://127.0.0.1:0",
		WithHTTPClient(&http.Client{Transport: ft}),
		WithRetries(2),
		WithRetryBackoff(time.Millisecond))
	if _, err := cl.Query(context.Background(), testQuerySpec()); err == nil {
		t.Fatal("expected an error after exhausting retries")
	}
	if got := ft.calls.Load(); got != 3 {
		t.Errorf("round trips = %d, want 3 (retries exhausted)", got)
	}
}

// TestNoRetryOnHTTPError proves HTTP-level failures (here 429) are returned
// as APIError without any retry.
func TestNoRetryOnHTTPError(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(server.ErrorResponse{Error: "server overloaded"})
	}))
	defer ts.Close()

	cl := New(ts.URL, WithRetries(3), WithRetryBackoff(time.Millisecond))
	_, err := cl.Query(context.Background(), testQuerySpec())
	if !IsOverloaded(err) {
		t.Fatalf("expected overload APIError, got %v", err)
	}
	if calls.Load() != 1 {
		t.Errorf("calls = %d, want exactly 1 (no retries on HTTP errors)", calls.Load())
	}
	var ae *APIError
	if ok := asAPIError(err, &ae); !ok || ae.Status != http.StatusTooManyRequests || ae.Message != "server overloaded" {
		t.Errorf("APIError = %+v", ae)
	}
}

func asAPIError(err error, target **APIError) bool {
	ae, ok := err.(*APIError)
	if !ok {
		return false
	}
	*target = ae
	return true
}

// TestDeadlinePropagation proves a ctx deadline becomes the request's
// timeout_ms, so the server-side query context expires with the caller's.
func TestDeadlinePropagation(t *testing.T) {
	var gotTimeout atomic.Int64
	ts := httptest.NewServer(okHandler(t, func(req server.QueryRequest) {
		gotTimeout.Store(req.TimeoutMS)
	}))
	defer ts.Close()

	cl := New(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := cl.Query(ctx, testQuerySpec()); err != nil {
		t.Fatalf("Query: %v", err)
	}
	ms := gotTimeout.Load()
	if ms <= 0 || ms > 5000 {
		t.Errorf("timeout_ms = %d, want within (0, 5000]", ms)
	}

	gotTimeout.Store(-1)
	if _, err := cl.Query(context.Background(), testQuerySpec()); err != nil {
		t.Fatalf("Query without deadline: %v", err)
	}
	if ms := gotTimeout.Load(); ms != 0 {
		t.Errorf("timeout_ms without a ctx deadline = %d, want 0", ms)
	}
}

// TestContextCancelStopsRetries proves a cancelled context aborts the retry
// loop instead of sleeping through the backoff schedule.
func TestContextCancelStopsRetries(t *testing.T) {
	ft := &flakyTransport{
		failures: 100,
		err:      &net.OpError{Op: "dial", Net: "tcp", Err: syscall.ECONNREFUSED},
		inner:    http.DefaultTransport,
	}
	cl := New("http://127.0.0.1:0",
		WithHTTPClient(&http.Client{Transport: ft}),
		WithRetries(50),
		WithRetryBackoff(50*time.Millisecond))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := cl.Query(ctx, testQuerySpec())
	if err == nil {
		t.Fatal("expected an error")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("cancelled retry loop took %v", elapsed)
	}
}

func TestRetryableClassification(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"conn refused", &net.OpError{Op: "dial", Err: syscall.ECONNREFUSED}, true},
		{"conn reset", &net.OpError{Op: "read", Err: syscall.ECONNRESET}, true},
		{"context canceled", context.Canceled, false},
		{"context deadline", context.DeadlineExceeded, false},
	} {
		if got := retryable(tc.err); got != tc.want {
			t.Errorf("retryable(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}
