package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"gaussrange/server"
)

// overloadedHandler answers 429 with a Retry-After header for the first
// `rejections` requests, then succeeds.
func overloadedHandler(rejections int32, retryAfter string, hits *atomic.Int32) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= rejections {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(server.ErrorResponse{Error: "overloaded"})
			return
		}
		json.NewEncoder(w).Encode(server.QueryResponse{IDs: []int64{7}})
	}
}

// TestRetryOn429 proves the opt-in: with WithRetryOn429 the client waits out
// the server's Retry-After hint and succeeds on the next attempt; the default
// client surfaces the 429 immediately.
func TestRetryOn429(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(overloadedHandler(2, "0", &hits))
	defer ts.Close()

	cl := New(ts.URL, WithRetryOn429(3), WithRetryBackoff(time.Millisecond))
	res, err := cl.Query(context.Background(), testQuerySpec())
	if err != nil {
		t.Fatalf("query with 429 retry: %v", err)
	}
	if len(res.IDs) != 1 || res.IDs[0] != 7 {
		t.Fatalf("unexpected result %v", res.IDs)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (2 rejections + success)", got)
	}
}

// TestNo429RetryByDefault checks a default client returns the 429 without a
// second attempt.
func TestNo429RetryByDefault(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(overloadedHandler(1000, "1", &hits))
	defer ts.Close()

	cl := New(ts.URL)
	_, err := cl.Query(context.Background(), testQuerySpec())
	if !IsOverloaded(err) {
		t.Fatalf("want overload error, got %v", err)
	}
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("want *APIError, got %T", err)
	}
	if ae.RetryAfter != time.Second {
		t.Fatalf("RetryAfter = %v, want 1s", ae.RetryAfter)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want exactly 1", got)
	}
}

// TestRetryOn429Exhausted checks the retry budget is bounded: n retries make
// n+1 attempts, then the 429 is surfaced.
func TestRetryOn429Exhausted(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(overloadedHandler(1000, "0", &hits))
	defer ts.Close()

	cl := New(ts.URL, WithRetryOn429(2), WithRetryBackoff(time.Millisecond))
	_, err := cl.Query(context.Background(), testQuerySpec())
	if !IsOverloaded(err) {
		t.Fatalf("want overload error after exhaustion, got %v", err)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (initial + 2 retries)", got)
	}
}

// TestRetryOn429ContextCancel checks a cancelled context stops the 429 wait
// immediately instead of sleeping out a long Retry-After.
func TestRetryOn429ContextCancel(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(overloadedHandler(1000, "30", &hits))
	defer ts.Close()

	cl := New(ts.URL, WithRetryOn429(5))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err := cl.Query(ctx, testQuerySpec())
	if err == nil {
		t.Fatal("expected an error")
	}
	if time.Since(t0) > 5*time.Second {
		t.Fatalf("client slept out the Retry-After hint despite cancellation (%v)", time.Since(t0))
	}
}

// TestParseRetryAfter covers both header forms and the garbage cases.
func TestParseRetryAfter(t *testing.T) {
	if d := parseRetryAfter(""); d != 0 {
		t.Fatalf("empty header: %v, want 0", d)
	}
	if d := parseRetryAfter("7"); d != 7*time.Second {
		t.Fatalf("delta-seconds: %v, want 7s", d)
	}
	if d := parseRetryAfter("-3"); d != 0 {
		t.Fatalf("negative delta: %v, want 0", d)
	}
	future := time.Now().Add(10 * time.Second).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(future); d <= 0 || d > 10*time.Second {
		t.Fatalf("HTTP date: %v, want (0, 10s]", d)
	}
	past := time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(past); d != 0 {
		t.Fatalf("past HTTP date: %v, want 0", d)
	}
	if d := parseRetryAfter("soon"); d != 0 {
		t.Fatalf("garbage header: %v, want 0", d)
	}
}
