package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"gaussrange/server"
)

// overloadedHandler answers 429 with a Retry-After header for the first
// `rejections` requests, then succeeds.
func overloadedHandler(rejections int32, retryAfter string, hits *atomic.Int32) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= rejections {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(server.ErrorResponse{Error: "overloaded"})
			return
		}
		json.NewEncoder(w).Encode(server.QueryResponse{IDs: []int64{7}})
	}
}

// TestRetryOn429 proves the opt-in: with WithRetryOn429 the client waits out
// the server's Retry-After hint and succeeds on the next attempt; the default
// client surfaces the 429 immediately.
func TestRetryOn429(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(overloadedHandler(2, "0", &hits))
	defer ts.Close()

	cl := New(ts.URL, WithRetryOn429(3), WithRetryBackoff(time.Millisecond))
	res, err := cl.Query(context.Background(), testQuerySpec())
	if err != nil {
		t.Fatalf("query with 429 retry: %v", err)
	}
	if len(res.IDs) != 1 || res.IDs[0] != 7 {
		t.Fatalf("unexpected result %v", res.IDs)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (2 rejections + success)", got)
	}
}

// TestNo429RetryByDefault checks a default client returns the 429 without a
// second attempt.
func TestNo429RetryByDefault(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(overloadedHandler(1000, "1", &hits))
	defer ts.Close()

	cl := New(ts.URL)
	_, err := cl.Query(context.Background(), testQuerySpec())
	if !IsOverloaded(err) {
		t.Fatalf("want overload error, got %v", err)
	}
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("want *APIError, got %T", err)
	}
	if ae.RetryAfter != time.Second {
		t.Fatalf("RetryAfter = %v, want 1s", ae.RetryAfter)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want exactly 1", got)
	}
}

// TestRetryOn429Exhausted checks the retry budget is bounded: n retries make
// n+1 attempts, then the 429 is surfaced.
func TestRetryOn429Exhausted(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(overloadedHandler(1000, "0", &hits))
	defer ts.Close()

	cl := New(ts.URL, WithRetryOn429(2), WithRetryBackoff(time.Millisecond))
	_, err := cl.Query(context.Background(), testQuerySpec())
	if !IsOverloaded(err) {
		t.Fatalf("want overload error after exhaustion, got %v", err)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (initial + 2 retries)", got)
	}
}

// TestRetryOn429ContextCancel checks a cancelled context stops the 429 wait
// immediately instead of sleeping out a long Retry-After.
func TestRetryOn429ContextCancel(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(overloadedHandler(1000, "30", &hits))
	defer ts.Close()

	cl := New(ts.URL, WithRetryOn429(5))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err := cl.Query(ctx, testQuerySpec())
	if err == nil {
		t.Fatal("expected an error")
	}
	if time.Since(t0) > 5*time.Second {
		t.Fatalf("client slept out the Retry-After hint despite cancellation (%v)", time.Since(t0))
	}
}

// TestParseRetryAfter covers both header forms and the garbage cases.
func TestParseRetryAfter(t *testing.T) {
	if d := parseRetryAfter(""); d != 0 {
		t.Fatalf("empty header: %v, want 0", d)
	}
	if d := parseRetryAfter("7"); d != 7*time.Second {
		t.Fatalf("delta-seconds: %v, want 7s", d)
	}
	if d := parseRetryAfter("-3"); d != 0 {
		t.Fatalf("negative delta: %v, want 0", d)
	}
	future := time.Now().Add(10 * time.Second).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(future); d <= 0 || d > 10*time.Second {
		t.Fatalf("HTTP date: %v, want (0, 10s]", d)
	}
	past := time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(past); d != 0 {
		t.Fatalf("past HTTP date: %v, want 0", d)
	}
	if d := parseRetryAfter("soon"); d != 0 {
		t.Fatalf("garbage header: %v, want 0", d)
	}
}

// overloadedMutationHandler answers 429 with a Retry-After hint for the first
// `rejections` mutation requests, then commits with a fixed response.
func overloadedMutationHandler(rejections int32, hits *atomic.Int32) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= rejections {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(server.ErrorResponse{Error: "overloaded"})
			return
		}
		switch r.Method {
		case http.MethodPost:
			json.NewEncoder(w).Encode(server.InsertPointsResponse{IDs: []int64{42}, Epoch: 9})
		case http.MethodDelete:
			json.NewEncoder(w).Encode(server.DeletePointResponse{ID: 42, Deleted: true, Epoch: 10})
		}
	}
}

// TestMutation429Retry proves mutations honour Retry-After on 429 exactly
// like queries: a 429 means the batch never entered execution, so the
// opt-in retry is duplicate-safe for writes too.
func TestMutation429Retry(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(overloadedMutationHandler(2, &hits))
	defer ts.Close()

	cl := New(ts.URL, WithRetryOn429(3), WithRetryBackoff(time.Millisecond))
	ids, epoch, err := cl.InsertPoints(context.Background(), [][]float64{{1, 2}})
	if err != nil {
		t.Fatalf("insert with 429 retry: %v", err)
	}
	if len(ids) != 1 || ids[0] != 42 || epoch != 9 {
		t.Fatalf("insert result %v @%d", ids, epoch)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (2 rejections + success)", got)
	}

	hits.Store(0)
	deleted, epoch, err := cl.DeletePoint(context.Background(), 42)
	if err != nil || !deleted || epoch != 10 {
		t.Fatalf("delete with 429 retry: %v %v @%d", err, deleted, epoch)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d delete requests, want 3", got)
	}
}

// TestMutationNo429RetryByDefault: without the opt-in, a mutation surfaces
// the 429 (with its Retry-After hint) after exactly one attempt.
func TestMutationNo429RetryByDefault(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(overloadedHandler(1000, "1", &hits))
	defer ts.Close()

	_, _, err := New(ts.URL).InsertPoints(context.Background(), [][]float64{{1, 2}})
	if !IsOverloaded(err) {
		t.Fatalf("want overload error, got %v", err)
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.RetryAfter != time.Second {
		t.Fatalf("Retry-After hint lost on the mutation path: %v", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want exactly 1", got)
	}
}

// TestMutationNoConnectionRetry: a torn connection mid-mutation is surfaced,
// never resent — the batch may have committed, and a resend would apply it
// twice. The same failure on the read path IS retried.
func TestMutationNoConnectionRetry(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			conn, _, _ := w.(http.Hijacker).Hijack()
			conn.Close()
			return
		}
		json.NewEncoder(w).Encode(server.QueryResponse{IDs: []int64{}})
	}))
	defer ts.Close()

	cl := New(ts.URL, WithRetryBackoff(time.Millisecond))
	if _, _, err := cl.InsertPoints(context.Background(), [][]float64{{1, 2}}); err == nil {
		t.Fatal("torn mutation connection was silently retried")
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("mutation made %d attempts, want exactly 1", got)
	}

	hits.Store(0)
	if _, err := cl.Query(context.Background(), testQuerySpec()); err != nil {
		t.Fatalf("read after torn connection should retry and succeed: %v", err)
	}
	if got := hits.Load(); got != 2 {
		t.Fatalf("read made %d attempts, want 2 (torn + retry)", got)
	}
}

// TestWaitForEpoch covers the read-your-writes barrier: the wait returns once
// the served epoch reaches the target, and fails fast on a stalled replica.
func TestWaitForEpoch(t *testing.T) {
	var epoch atomic.Uint64
	epoch.Store(3)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		e := epoch.Add(1) // advances one epoch per poll
		json.NewEncoder(w).Encode(server.Health{Status: "ok", Epoch: e})
	}))
	defer ts.Close()

	got, err := New(ts.URL).WaitForEpoch(context.Background(), 7, time.Millisecond)
	if err != nil || got < 7 {
		t.Fatalf("WaitForEpoch = %d, %v", got, err)
	}

	stalled := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(server.Health{Status: "ok", Epoch: 5, ReplicaError: "lineage break"})
	}))
	defer stalled.Close()
	if _, err := New(stalled.URL).WaitForEpoch(context.Background(), 9, time.Millisecond); err == nil {
		t.Fatal("stalled replica did not fail the wait")
	}
}
