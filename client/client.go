// Package client is a typed Go client for the prqserved HTTP API (see
// gaussrange/server). It speaks the same wire types as the server, retries
// read requests that failed on connection errors (reads are idempotent, so
// retries are safe), and propagates context deadlines end-to-end: a ctx
// deadline becomes the request's timeout_ms, so the server's query context
// expires when the caller's does.
//
// Mutations are NEVER retried on connection errors: a torn connection leaves
// the outcome unknown — the batch may have committed before the connection
// died — so a blind resend risks applying it twice (duplicate points under
// fresh ids). The connection error is surfaced instead; callers that need
// exactly-once semantics should read back (compare /healthz max_id or the
// inserted coordinates) before resending.
//
// The server's 429 admission rejection means the request was never executed,
// so retrying it is safe for every endpoint — mutations included;
// WithRetryOn429 opts into a bounded retry honoring the server's Retry-After
// hint, applied identically to query and mutation calls.
//
// Follower read replicas (prqserved -follow) answer queries with
// replica_epoch and refuse mutations with 403 (IsReadOnly). A client that
// wrote at epoch E on the leader has read-your-writes on a follower once the
// follower's epoch reaches E — WaitForEpoch blocks until it does.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"gaussrange"
	"gaussrange/server"
)

// Client talks to one prqserved instance. Safe for concurrent use.
type Client struct {
	base     string
	hc       *http.Client
	retries  int
	backoff  time.Duration
	retry429 int
}

// Option configures New.
type Option func(*Client)

// WithHTTPClient substitutes the underlying HTTP client (default: a client
// with a 30 s overall timeout).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithTimeout sets the per-attempt HTTP timeout (default 30 s; 0 disables).
func WithTimeout(d time.Duration) Option {
	return func(c *Client) { c.hc.Timeout = d }
}

// WithRetries sets how many times a request is retried after a connection
// error (default 2). HTTP-level errors (4xx/5xx) are never retried.
func WithRetries(n int) Option {
	return func(c *Client) {
		if n >= 0 {
			c.retries = n
		}
	}
}

// WithRetryBackoff sets the base delay between retries, doubled per attempt
// (default 50 ms).
func WithRetryBackoff(d time.Duration) Option {
	return func(c *Client) { c.backoff = d }
}

// WithRetryOn429 opts into retrying requests the server rejected with 429
// (admission control), at most n times per request, waiting out the server's
// Retry-After hint (or the backoff schedule when absent) between attempts.
// A 429 means the request never entered execution, so the retry is safe for
// mutations too. Default 0: 429 is returned to the caller immediately.
func WithRetryOn429(n int) Option {
	return func(c *Client) {
		if n >= 0 {
			c.retry429 = n
		}
	}
}

// New returns a client for the server at baseURL (e.g. "http://127.0.0.1:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:    strings.TrimRight(baseURL, "/"),
		hc:      &http.Client{Timeout: 30 * time.Second},
		retries: 2,
		backoff: 50 * time.Millisecond,
	}
	for _, fn := range opts {
		fn(c)
	}
	return c
}

// APIError is a non-2xx reply from the server.
type APIError struct {
	Status  int
	Message string
	// RetryAfter is the server's Retry-After hint (0 when absent) — how long
	// to back off before retrying a 429.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.Status, e.Message)
}

// IsOverloaded reports whether err is the server's 429 admission rejection —
// the signal to back off and retry later.
func IsOverloaded(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == http.StatusTooManyRequests
}

// IsReadOnly reports whether err is a follower replica's 403 mutation
// refusal — the signal to direct the write at the leader instead.
func IsReadOnly(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == http.StatusForbidden
}

// IsDeadline reports whether err is the server's 504 for an expired query
// deadline (the client's own context error is reported directly, not as an
// APIError).
func IsDeadline(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == http.StatusGatewayTimeout
}

// retryable reports whether err is a connection-level failure worth
// retrying: dial/read/write errors and torn connections. HTTP timeouts and
// context errors are not retried — the caller's deadline governs those.
func retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return false
	}
	var opErr *net.OpError
	if errors.As(err, &opErr) {
		return true
	}
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

// do runs one JSON round-trip with connection-error retries — for the read
// endpoints, where re-sending after a torn connection is safe.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	return c.doRetry(ctx, method, path, in, out, true)
}

// doMutate runs one JSON round-trip without connection-error retries: a torn
// connection leaves a mutation's outcome unknown, so the error is surfaced
// instead of re-applying the batch. 429 retries (opt-in) remain safe — the
// server rejects before executing.
func (c *Client) doMutate(ctx context.Context, method, path string, in, out any) error {
	return c.doRetry(ctx, method, path, in, out, false)
}

func (c *Client) doRetry(ctx context.Context, method, path string, in, out any, connRetry bool) error {
	var payload []byte
	if in != nil {
		var err error
		payload, err = json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
	}
	connAttempts, overloads := 0, 0
	for {
		var body io.Reader
		if payload != nil {
			body = bytes.NewReader(payload)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
		if err != nil {
			return fmt.Errorf("client: building request: %w", err)
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			if urlErr := new(url.Error); errors.As(err, &urlErr) && retryable(urlErr.Err) && connRetry {
				connAttempts++
				if connAttempts > c.retries {
					return fmt.Errorf("client: giving up after %d attempts: %w", c.retries+1, err)
				}
				if err := sleepCtx(ctx, c.backoff<<(connAttempts-1)); err != nil {
					return err
				}
				continue
			}
			return fmt.Errorf("client: %w", err)
		}
		err = decodeResponse(resp, out)
		var ae *APIError
		if errors.As(err, &ae) && ae.Status == http.StatusTooManyRequests && overloads < c.retry429 {
			overloads++
			delay := ae.RetryAfter
			if delay <= 0 {
				delay = c.backoff << (overloads - 1)
			}
			if serr := sleepCtx(ctx, delay); serr != nil {
				return serr
			}
			continue
		}
		return err
	}
}

// sleepCtx waits for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(d):
		return nil
	}
}

func decodeResponse(resp *http.Response, out any) error {
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("client: reading response: %w", err)
	}
	if resp.StatusCode/100 != 2 {
		var er server.ErrorResponse
		msg := strings.TrimSpace(string(data))
		if json.Unmarshal(data, &er) == nil && er.Error != "" {
			msg = er.Error
		}
		return &APIError{
			Status:     resp.StatusCode,
			Message:    msg,
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("client: decoding response: %w", err)
	}
	return nil
}

// parseRetryAfter reads a Retry-After header: delta-seconds or an HTTP date.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// timeoutMS derives the wire deadline from ctx: the remaining time to the
// ctx deadline in milliseconds (at least 1), or 0 when ctx has none.
func timeoutMS(ctx context.Context) int64 {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	ms := time.Until(dl).Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return ms
}

// Query runs one probabilistic range query on the server. A ctx deadline is
// propagated into the server-side query context.
func (c *Client) Query(ctx context.Context, spec gaussrange.QuerySpec) (*gaussrange.Result, error) {
	req := server.RequestFromSpec(spec)
	req.TimeoutMS = timeoutMS(ctx)
	var resp server.QueryResponse
	if err := c.do(ctx, http.MethodPost, "/v1/query", req, &resp); err != nil {
		return nil, err
	}
	return resp.Result(), nil
}

// QueryRaw runs one query at the wire level: the request is sent verbatim
// (the caller controls timeout_ms and allow_partial) and the response is
// returned with every wire field intact — epoch, stats and, when the server
// is a shard router, the routing report. Used by routers talking to shards
// and by tools that need the full response.
func (c *Client) QueryRaw(ctx context.Context, req server.QueryRequest) (server.QueryResponse, error) {
	var resp server.QueryResponse
	err := c.do(ctx, http.MethodPost, "/v1/query", req, &resp)
	return resp, err
}

// QueryBatch runs many queries through the server's pooled batch executor.
// workers ≤ 0 lets the server pick its configured pool size. Results align
// with specs.
func (c *Client) QueryBatch(ctx context.Context, specs []gaussrange.QuerySpec, workers int) ([]*gaussrange.Result, error) {
	req := server.BatchRequest{
		Queries:   make([]server.QueryRequest, len(specs)),
		Workers:   workers,
		TimeoutMS: timeoutMS(ctx),
	}
	for i, spec := range specs {
		req.Queries[i] = server.RequestFromSpec(spec)
	}
	var resp server.BatchResponse
	if err := c.do(ctx, http.MethodPost, "/v1/query/batch", req, &resp); err != nil {
		return nil, err
	}
	out := make([]*gaussrange.Result, len(resp.Results))
	for i, r := range resp.Results {
		out[i] = r.Result()
	}
	return out, nil
}

// QueryProb returns the qualification probability of one stored point under
// the given query parameters.
func (c *Client) QueryProb(ctx context.Context, spec gaussrange.QuerySpec, id int64) (float64, error) {
	req := server.ProbRequest{QueryRequest: server.RequestFromSpec(spec), ID: id}
	var resp server.ProbResponse
	if err := c.do(ctx, http.MethodPost, "/v1/prob", req, &resp); err != nil {
		return 0, err
	}
	return resp.Probability, nil
}

// Points fetches the coordinates of the identified points.
func (c *Client) Points(ctx context.Context, ids []int64) ([]server.Point, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	var sb strings.Builder
	for i, id := range ids {
		if i > 0 {
			sb.WriteByte('&')
		}
		fmt.Fprintf(&sb, "id=%d", id)
	}
	var resp server.PointsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/points?"+sb.String(), nil, &resp); err != nil {
		return nil, err
	}
	return resp.Points, nil
}

// Point fetches one stored point's coordinates.
func (c *Client) Point(ctx context.Context, id int64) ([]float64, error) {
	pts, err := c.Points(ctx, []int64{id})
	if err != nil {
		return nil, err
	}
	if len(pts) != 1 {
		return nil, fmt.Errorf("client: expected 1 point, got %d", len(pts))
	}
	return pts[0].Coords, nil
}

// InsertPoints inserts a batch of points as one atomic epoch and returns the
// identifiers assigned (aligned with points) plus the published epoch.
// Connection errors are not retried (the batch may or may not have applied);
// 429 rejections are retried under WithRetryOn429, which is safe.
func (c *Client) InsertPoints(ctx context.Context, points [][]float64) (ids []int64, epoch uint64, err error) {
	var resp server.InsertPointsResponse
	if err := c.doMutate(ctx, http.MethodPost, "/v1/points", server.InsertPointsRequest{Points: points}, &resp); err != nil {
		return nil, 0, err
	}
	return resp.IDs, resp.Epoch, nil
}

// InsertPointsWithIDs inserts a batch under caller-assigned identifiers (one
// per point, strictly increasing, at least the server's max id) as one atomic
// epoch. Like InsertPoints, connection errors are not retried.
func (c *Client) InsertPointsWithIDs(ctx context.Context, points [][]float64, ids []int64) (epoch uint64, err error) {
	if len(ids) != len(points) {
		return 0, fmt.Errorf("client: %d ids for %d points", len(ids), len(points))
	}
	var resp server.InsertPointsResponse
	if err := c.doMutate(ctx, http.MethodPost, "/v1/points", server.InsertPointsRequest{Points: points, IDs: ids}, &resp); err != nil {
		return 0, err
	}
	return resp.Epoch, nil
}

// InsertPoint inserts one point and returns its identifier and the epoch the
// insert published.
func (c *Client) InsertPoint(ctx context.Context, p []float64) (id int64, epoch uint64, err error) {
	ids, epoch, err := c.InsertPoints(ctx, [][]float64{p})
	if err != nil {
		return 0, 0, err
	}
	return ids[0], epoch, nil
}

// DeletePoint deletes one point, reporting whether the id was live and the
// epoch the delete published (unchanged when the id was already gone —
// deletes are idempotent and never 404).
func (c *Client) DeletePoint(ctx context.Context, id int64) (deleted bool, epoch uint64, err error) {
	var resp server.DeletePointResponse
	if err := c.doMutate(ctx, http.MethodDelete, "/v1/points/"+strconv.FormatInt(id, 10), nil, &resp); err != nil {
		return false, 0, err
	}
	return resp.Deleted, resp.Epoch, nil
}

// WaitForEpoch polls /healthz until the server's storage epoch reaches
// epoch, returning the first epoch observed at or past it. On a follower the
// health epoch is the replay epoch, so WaitForEpoch(ctx, E) after a leader
// write that published epoch E is the read-your-writes barrier: once it
// returns, every query on this server answers at ≥ E. interval ≤ 0 polls
// every 10ms; the ctx deadline bounds the wait. A follower that reports a
// sticky replication error fails the wait immediately — its epoch will never
// advance.
func (c *Client) WaitForEpoch(ctx context.Context, epoch uint64, interval time.Duration) (uint64, error) {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	for {
		h, err := c.Health(ctx)
		if err != nil {
			return 0, err
		}
		if h.Epoch >= epoch {
			return h.Epoch, nil
		}
		if h.ReplicaError != "" {
			return h.Epoch, fmt.Errorf("client: replica stalled at epoch %d with error: %s", h.Epoch, h.ReplicaError)
		}
		if err := sleepCtx(ctx, interval); err != nil {
			return h.Epoch, err
		}
	}
}

// Health checks liveness and returns the dataset summary.
func (c *Client) Health(ctx context.Context) (server.Health, error) {
	var h server.Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// Stats fetches the server's /statsz snapshot.
func (c *Client) Stats(ctx context.Context) (server.StatsSnapshot, error) {
	var s server.StatsSnapshot
	err := c.do(ctx, http.MethodGet, "/statsz", nil, &s)
	return s, err
}
