#!/usr/bin/env bash
# bench_snapshot.sh — record the Phase-3 kernel comparison as a committed
# artifact: runs `prqbench phase3` on the default 2-D workload and writes
# BENCH_phase3.json at the repository root (or to $1 when given).
#
# Environment:
#   GO       go binary (default: go)
#   QUERIES  queries per kernel (default: 16)
#   SAMPLES  Monte Carlo samples per object (default: 100000)
#   SEED     dataset / cloud seed (default: 1)
set -euo pipefail
cd "$(dirname "$0")/.."

GO="${GO:-go}"
QUERIES="${QUERIES:-16}"
SAMPLES="${SAMPLES:-100000}"
SEED="${SEED:-1}"
OUT="${1:-BENCH_phase3.json}"

echo "bench-snapshot: running prqbench phase3 (queries=$QUERIES samples=$SAMPLES seed=$SEED)"
"$GO" run ./cmd/prqbench -queries "$QUERIES" -samples "$SAMPLES" -seed "$SEED" \
    -json "$OUT" phase3

echo "bench-snapshot: wrote $OUT"
