#!/usr/bin/env bash
# bench_snapshot.sh — record benchmark artifacts at the repository root:
#   BENCH_phase3.json  `prqbench phase3` — Phase-3 kernel comparison
#                      (per-candidate, shared-flat, shared-grid, shared-early
#                      and tiered, incl. the tiered kernel's tier-mix counters
#                      and tier_closure_rate)
#   BENCH_churn.json   `prqbench churn`  — read latency under live mutations,
#                      sweeping write fraction and both rebuild strategies,
#                      plus the group-commit ingest section (sync vs grouped
#                      wal insert throughput at 64 writers and the
#                      sync/grouped/follower identity booleans)
#   BENCH_shard.json   `prqbench shard`  — sharded scatter-gather serving:
#                      aggregate throughput at K ∈ {1,2,4} capacity-modelled
#                      shards, mean fan-out, answer identity and the
#                      router's scatter overhead
#   BENCH_phase1.json  `prqbench phase1` — packed+fused Phase-1/2 front half
#                      vs the pointer tree: per-query front-half time,
#                      certificate counters (f32 rechecks), answer and
#                      counter identity, and the front-half speedup
# Pass an output path as $1 to redirect the phase3 artifact (legacy usage);
# the churn artifact always lands next to it as BENCH_churn.json.
#
# Environment:
#   GO         go binary (default: go)
#   QUERIES    queries per kernel for phase3 (default: 16)
#   SAMPLES    Monte Carlo samples per object (default: 100000)
#   SEED       dataset / cloud seed (default: 1)
#   CHURN_OPS  operations per churn cell (default: 6000)
#   WORKERS    concurrent workers for churn (default: 8)
#   SHARD_QUERIES  queries per shard-count cell (default: 1200)
#   SHARD_WORKERS  concurrent clients driving the router (default: 64)
#   PHASE1_QUERIES queries per front-half arm for phase1 (default: 64)
set -euo pipefail
cd "$(dirname "$0")/.."

GO="${GO:-go}"
QUERIES="${QUERIES:-16}"
SAMPLES="${SAMPLES:-100000}"
SEED="${SEED:-1}"
CHURN_OPS="${CHURN_OPS:-6000}"
WORKERS="${WORKERS:-8}"
SHARD_QUERIES="${SHARD_QUERIES:-1200}"
SHARD_WORKERS="${SHARD_WORKERS:-64}"
PHASE1_QUERIES="${PHASE1_QUERIES:-64}"
OUT="${1:-BENCH_phase3.json}"
CHURN_OUT="$(dirname "$OUT")/BENCH_churn.json"
SHARD_OUT="$(dirname "$OUT")/BENCH_shard.json"
PHASE1_OUT="$(dirname "$OUT")/BENCH_phase1.json"

echo "bench-snapshot: running prqbench phase3 (queries=$QUERIES samples=$SAMPLES seed=$SEED)"
"$GO" run ./cmd/prqbench -queries "$QUERIES" -samples "$SAMPLES" -seed "$SEED" \
    -json "$OUT" phase3

echo "bench-snapshot: wrote $OUT"

echo "bench-snapshot: running prqbench churn (ops=$CHURN_OPS workers=$WORKERS seed=$SEED)"
"$GO" run ./cmd/prqbench -queries "$CHURN_OPS" -workers "$WORKERS" -seed "$SEED" \
    -json "$CHURN_OUT" churn

echo "bench-snapshot: wrote $CHURN_OUT"

echo "bench-snapshot: running prqbench shard (queries=$SHARD_QUERIES workers=$SHARD_WORKERS seed=$SEED)"
"$GO" run ./cmd/prqbench -queries "$SHARD_QUERIES" -workers "$SHARD_WORKERS" -seed "$SEED" \
    -json "$SHARD_OUT" shard

echo "bench-snapshot: wrote $SHARD_OUT"

echo "bench-snapshot: running prqbench phase1 (queries=$PHASE1_QUERIES seed=$SEED)"
"$GO" run ./cmd/prqbench -queries "$PHASE1_QUERIES" -seed "$SEED" \
    -json "$PHASE1_OUT" phase1

echo "bench-snapshot: wrote $PHASE1_OUT"
