#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of the network query service:
# datagen → prqserved → one query through the client → graceful SIGTERM.
set -euo pipefail
cd "$(dirname "$0")/.."

GO="${GO:-go}"
tmp="$(mktemp -d)"
pid=""
cleanup() {
    if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
        kill -9 "$pid" 2>/dev/null || true
    fi
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "serve-smoke: building binaries"
"$GO" build -o "$tmp/bin/" ./cmd/datagen ./cmd/prqserved ./cmd/prqquery

echo "serve-smoke: generating dataset"
"$tmp/bin/datagen" -seed 1 -n 5000 clustered "$tmp/points.csv"

echo "serve-smoke: starting prqserved"
"$tmp/bin/prqserved" -csv "$tmp/points.csv" -addr 127.0.0.1:0 -addr-file "$tmp/addr" &
pid=$!

for _ in $(seq 1 100); do
    [ -s "$tmp/addr" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "serve-smoke: prqserved exited before listening" >&2
        exit 1
    fi
    sleep 0.1
done
[ -s "$tmp/addr" ] || { echo "serve-smoke: no address file" >&2; exit 1; }
addr="$(cat "$tmp/addr")"
echo "serve-smoke: server listening on $addr"

echo "serve-smoke: querying through the client"
"$tmp/bin/prqquery" -server "http://$addr" -json \
    -center 500,500 -cov "70,34.6;34.6,30" -delta 25 -theta 0.01 \
    | tee "$tmp/result.json"
grep -q '"ids"' "$tmp/result.json"

echo "serve-smoke: draining with SIGTERM"
kill -TERM "$pid"
wait "$pid"
pid=""

echo "serve-smoke: OK"
