#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of the network query service:
# datagen → prqserved → one query through the client → graceful SIGTERM,
# then the sharded path: prqshard splits the same dataset into 2 shards,
# prqserved -router scatters over them, and the routed answer must be
# byte-identical to the direct single-node answer.
set -euo pipefail
cd "$(dirname "$0")/.."

GO="${GO:-go}"
tmp="$(mktemp -d)"
pid=""
pids=()
cleanup() {
    if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
        kill -9 "$pid" 2>/dev/null || true
    fi
    for p in "${pids[@]}"; do
        kill -9 "$p" 2>/dev/null || true
    done
    rm -rf "$tmp"
}
trap cleanup EXIT

# wait_addr FILE PID — wait until FILE holds a bound address.
wait_addr() {
    local file="$1" watch="$2"
    for _ in $(seq 1 100); do
        [ -s "$file" ] && return 0
        if ! kill -0 "$watch" 2>/dev/null; then
            echo "serve-smoke: server exited before listening" >&2
            return 1
        fi
        sleep 0.1
    done
    [ -s "$file" ] || { echo "serve-smoke: no address file $file" >&2; return 1; }
}

echo "serve-smoke: building binaries"
"$GO" build -o "$tmp/bin/" ./cmd/datagen ./cmd/prqserved ./cmd/prqquery ./cmd/prqshard

echo "serve-smoke: generating dataset"
"$tmp/bin/datagen" -seed 1 -n 5000 clustered "$tmp/points.csv"

echo "serve-smoke: starting prqserved"
"$tmp/bin/prqserved" -csv "$tmp/points.csv" -addr 127.0.0.1:0 -addr-file "$tmp/addr" &
pid=$!

for _ in $(seq 1 100); do
    [ -s "$tmp/addr" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "serve-smoke: prqserved exited before listening" >&2
        exit 1
    fi
    sleep 0.1
done
[ -s "$tmp/addr" ] || { echo "serve-smoke: no address file" >&2; exit 1; }
addr="$(cat "$tmp/addr")"
echo "serve-smoke: server listening on $addr"

echo "serve-smoke: querying through the client"
"$tmp/bin/prqquery" -server "http://$addr" -json \
    -center 500,500 -cov "70,34.6;34.6,30" -delta 25 -theta 0.01 \
    | tee "$tmp/result.json"
grep -q '"ids"' "$tmp/result.json"

echo "serve-smoke: querying direct answer for the router diff"
"$tmp/bin/prqquery" -server "http://$addr" -json \
    -center 500,500 -cov "70,34.6;34.6,30" -delta 25 -theta 0.01 \
    > "$tmp/direct.json"

echo "serve-smoke: draining with SIGTERM"
kill -TERM "$pid"
wait "$pid"
pid=""

echo "serve-smoke: splitting the dataset into 2 shards"
"$tmp/bin/prqshard" -csv "$tmp/points.csv" -k 2 -out "$tmp/shards"

echo "serve-smoke: starting 2 shard servers"
shard_urls=""
for i in 0 1; do
    "$tmp/bin/prqserved" -snapshot "$tmp/shards/shard-$i.grdb" \
        -addr 127.0.0.1:0 -addr-file "$tmp/shard$i.addr" &
    pids+=($!)
    wait_addr "$tmp/shard$i.addr" "${pids[-1]}"
    shard_urls="$shard_urls,http://$(cat "$tmp/shard$i.addr")"
done
shard_urls="${shard_urls#,}"

echo "serve-smoke: starting the router over $shard_urls"
"$tmp/bin/prqserved" -router -shard-map "$tmp/shards/shardmap.json" \
    -shards "$shard_urls" -addr 127.0.0.1:0 -addr-file "$tmp/router.addr" &
pids+=($!)
wait_addr "$tmp/router.addr" "${pids[-1]}"
router_addr="$(cat "$tmp/router.addr")"

echo "serve-smoke: querying through the router"
"$tmp/bin/prqquery" -server "http://$router_addr" -json \
    -center 500,500 -cov "70,34.6;34.6,30" -delta 25 -theta 0.01 \
    > "$tmp/routed.json"

# The routed answer ids must be non-empty and byte-identical to the direct
# single-node ids.
grep -o '"ids":\[[0-9,]*\]' "$tmp/direct.json" > "$tmp/direct.ids"
grep -o '"ids":\[[0-9,]*\]' "$tmp/routed.json" > "$tmp/routed.ids"
grep -q '[0-9]' "$tmp/direct.ids" || { echo "serve-smoke: direct answer empty — diff proves nothing" >&2; exit 1; }
if ! diff "$tmp/direct.ids" "$tmp/routed.ids"; then
    echo "serve-smoke: routed answer differs from direct answer" >&2
    exit 1
fi
echo "serve-smoke: routed answer matches direct answer: $(cat "$tmp/direct.ids")"

echo "serve-smoke: draining shard cluster with SIGTERM"
for p in "${pids[@]}"; do
    kill -TERM "$p" 2>/dev/null || true
done
for p in "${pids[@]}"; do
    wait "$p" 2>/dev/null || true
done
pids=()

echo "serve-smoke: OK"
