#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of the network query service:
# datagen → prqserved → one query through the client → graceful SIGTERM,
# then the sharded path: prqshard splits the same dataset into 2 shards,
# prqserved -router scatters over them, and the routed answer must be
# byte-identical to the direct single-node answer. A final replication step
# boots a leader with a group-commit wal and a read-only follower tailing
# it: an insert on the leader must become readable on the follower at ≥ the
# published epoch with id-identical query answers, and the follower must
# refuse mutations.
set -euo pipefail
cd "$(dirname "$0")/.."

GO="${GO:-go}"
tmp="$(mktemp -d)"
pid=""
pids=()
cleanup() {
    if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
        kill -9 "$pid" 2>/dev/null || true
    fi
    for p in "${pids[@]}"; do
        kill -9 "$p" 2>/dev/null || true
    done
    rm -rf "$tmp"
}
trap cleanup EXIT

# wait_addr FILE PID — wait until FILE holds a bound address.
wait_addr() {
    local file="$1" watch="$2"
    for _ in $(seq 1 100); do
        [ -s "$file" ] && return 0
        if ! kill -0 "$watch" 2>/dev/null; then
            echo "serve-smoke: server exited before listening" >&2
            return 1
        fi
        sleep 0.1
    done
    [ -s "$file" ] || { echo "serve-smoke: no address file $file" >&2; return 1; }
}

echo "serve-smoke: building binaries"
"$GO" build -o "$tmp/bin/" ./cmd/datagen ./cmd/prqserved ./cmd/prqquery ./cmd/prqshard

echo "serve-smoke: generating dataset"
"$tmp/bin/datagen" -seed 1 -n 5000 clustered "$tmp/points.csv"

echo "serve-smoke: starting prqserved"
"$tmp/bin/prqserved" -csv "$tmp/points.csv" -addr 127.0.0.1:0 -addr-file "$tmp/addr" &
pid=$!

for _ in $(seq 1 100); do
    [ -s "$tmp/addr" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "serve-smoke: prqserved exited before listening" >&2
        exit 1
    fi
    sleep 0.1
done
[ -s "$tmp/addr" ] || { echo "serve-smoke: no address file" >&2; exit 1; }
addr="$(cat "$tmp/addr")"
echo "serve-smoke: server listening on $addr"

echo "serve-smoke: querying through the client"
"$tmp/bin/prqquery" -server "http://$addr" -json \
    -center 500,500 -cov "70,34.6;34.6,30" -delta 25 -theta 0.01 \
    | tee "$tmp/result.json"
grep -q '"ids"' "$tmp/result.json"

echo "serve-smoke: querying direct answer for the router diff"
"$tmp/bin/prqquery" -server "http://$addr" -json \
    -center 500,500 -cov "70,34.6;34.6,30" -delta 25 -theta 0.01 \
    > "$tmp/direct.json"

echo "serve-smoke: draining with SIGTERM"
kill -TERM "$pid"
wait "$pid"
pid=""

echo "serve-smoke: splitting the dataset into 2 shards"
"$tmp/bin/prqshard" -csv "$tmp/points.csv" -k 2 -out "$tmp/shards"

echo "serve-smoke: starting 2 shard servers"
shard_urls=""
for i in 0 1; do
    "$tmp/bin/prqserved" -snapshot "$tmp/shards/shard-$i.grdb" \
        -addr 127.0.0.1:0 -addr-file "$tmp/shard$i.addr" &
    pids+=($!)
    wait_addr "$tmp/shard$i.addr" "${pids[-1]}"
    shard_urls="$shard_urls,http://$(cat "$tmp/shard$i.addr")"
done
shard_urls="${shard_urls#,}"

echo "serve-smoke: starting the router over $shard_urls"
"$tmp/bin/prqserved" -router -shard-map "$tmp/shards/shardmap.json" \
    -shards "$shard_urls" -addr 127.0.0.1:0 -addr-file "$tmp/router.addr" &
pids+=($!)
wait_addr "$tmp/router.addr" "${pids[-1]}"
router_addr="$(cat "$tmp/router.addr")"

echo "serve-smoke: querying through the router"
"$tmp/bin/prqquery" -server "http://$router_addr" -json \
    -center 500,500 -cov "70,34.6;34.6,30" -delta 25 -theta 0.01 \
    > "$tmp/routed.json"

# The routed answer ids must be non-empty and byte-identical to the direct
# single-node ids.
grep -o '"ids":\[[0-9,]*\]' "$tmp/direct.json" > "$tmp/direct.ids"
grep -o '"ids":\[[0-9,]*\]' "$tmp/routed.json" > "$tmp/routed.ids"
grep -q '[0-9]' "$tmp/direct.ids" || { echo "serve-smoke: direct answer empty — diff proves nothing" >&2; exit 1; }
if ! diff "$tmp/direct.ids" "$tmp/routed.ids"; then
    echo "serve-smoke: routed answer differs from direct answer" >&2
    exit 1
fi
echo "serve-smoke: routed answer matches direct answer: $(cat "$tmp/direct.ids")"

echo "serve-smoke: draining shard cluster with SIGTERM"
for p in "${pids[@]}"; do
    kill -TERM "$p" 2>/dev/null || true
done
for p in "${pids[@]}"; do
    wait "$p" 2>/dev/null || true
done
pids=()

echo "serve-smoke: starting a leader with a group-commit wal"
"$tmp/bin/prqserved" -csv "$tmp/points.csv" -wal "$tmp/wal" -commit-window 2ms \
    -addr 127.0.0.1:0 -addr-file "$tmp/leader.addr" &
pids+=($!)
wait_addr "$tmp/leader.addr" "${pids[-1]}"
leader_addr="$(cat "$tmp/leader.addr")"

echo "serve-smoke: inserting two points on the leader"
curl -sfS -X POST "http://$leader_addr/v1/points" \
    -d '{"points":[[500,500],[501,501]]}' > "$tmp/insert.json"
grep -q '"ids"' "$tmp/insert.json"
epoch="$(grep -o '"epoch":[0-9]*' "$tmp/insert.json" | head -1 | cut -d: -f2)"
[ -n "$epoch" ] || { echo "serve-smoke: insert response has no epoch" >&2; exit 1; }
echo "serve-smoke: leader published epoch $epoch"

echo "serve-smoke: starting a follower tailing the wal"
# The follower bootstraps from the same CSV the leader loaded — the wal only
# carries history after that base state.
"$tmp/bin/prqserved" -csv "$tmp/points.csv" -follow "$tmp/wal" -follow-interval 10ms \
    -addr 127.0.0.1:0 -addr-file "$tmp/follower.addr" &
pids+=($!)
wait_addr "$tmp/follower.addr" "${pids[-1]}"
follower_addr="$(cat "$tmp/follower.addr")"

echo "serve-smoke: waiting for the follower to reach epoch $epoch"
caught_up=""
for _ in $(seq 1 100); do
    curl -sfS "http://$follower_addr/healthz" > "$tmp/fhealth.json" || true
    fepoch="$(grep -o '"epoch":[0-9]*' "$tmp/fhealth.json" | head -1 | cut -d: -f2)"
    if [ -n "$fepoch" ] && [ "$fepoch" -ge "$epoch" ]; then
        caught_up=1
        break
    fi
    sleep 0.1
done
[ -n "$caught_up" ] || { echo "serve-smoke: follower never reached epoch $epoch: $(cat "$tmp/fhealth.json")" >&2; exit 1; }
grep -q '"read_only":true' "$tmp/fhealth.json" || { echo "serve-smoke: follower health does not report read_only" >&2; exit 1; }

echo "serve-smoke: diffing leader and follower answers"
"$tmp/bin/prqquery" -server "http://$leader_addr" -json \
    -center 500,500 -cov "70,34.6;34.6,30" -delta 25 -theta 0.01 \
    > "$tmp/leader.json"
"$tmp/bin/prqquery" -server "http://$follower_addr" -json \
    -center 500,500 -cov "70,34.6;34.6,30" -delta 25 -theta 0.01 \
    > "$tmp/follower.json"
grep -o '"ids":\[[0-9,]*\]' "$tmp/leader.json" > "$tmp/leader.ids"
grep -o '"ids":\[[0-9,]*\]' "$tmp/follower.json" > "$tmp/follower.ids"
grep -q '[0-9]' "$tmp/leader.ids" || { echo "serve-smoke: leader answer empty — diff proves nothing" >&2; exit 1; }
if ! diff "$tmp/leader.ids" "$tmp/follower.ids"; then
    echo "serve-smoke: follower answer differs from leader answer" >&2
    exit 1
fi
echo "serve-smoke: follower answer matches leader answer at epoch >= $epoch"

echo "serve-smoke: checking the follower refuses mutations"
code="$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$follower_addr/v1/points" \
    -d '{"points":[[1,1]]}')"
if [ "$code" != "403" ]; then
    echo "serve-smoke: follower answered $code to an insert, want 403" >&2
    exit 1
fi

echo "serve-smoke: draining leader and follower with SIGTERM"
for p in "${pids[@]}"; do
    kill -TERM "$p" 2>/dev/null || true
done
for p in "${pids[@]}"; do
    wait "$p" 2>/dev/null || true
done
pids=()

echo "serve-smoke: OK"
