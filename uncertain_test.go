package gaussrange

import (
	"math"
	"math/rand"
	"testing"
)

func TestLoadUncertainValidation(t *testing.T) {
	if _, err := LoadUncertain(nil, nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := LoadUncertain([][]float64{{}}, nil); err == nil {
		t.Error("zero-dim accepted")
	}
	if _, err := LoadUncertain([][]float64{{1, 2}}, [][][]float64{}); err == nil {
		t.Error("mismatched covs accepted")
	}
	if _, err := LoadUncertain([][]float64{{1, 2}, {3}}, nil); err == nil {
		t.Error("ragged means accepted")
	}
	if _, err := LoadUncertain([][]float64{{1, 2}}, [][][]float64{{{1, 2}, {3, 4}}}); err == nil {
		t.Error("asymmetric covariance accepted")
	}
}

func TestUncertainDBQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	n := 2000
	means := make([][]float64, n)
	covs := make([][][]float64, n)
	for i := range means {
		means[i] = []float64{rng.Float64() * 500, rng.Float64() * 500}
		if i%2 == 0 {
			s := 1 + rng.Float64()*9
			covs[i] = [][]float64{{s, 0}, {0, s}}
		}
	}
	u, err := LoadUncertain(means, covs)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != n || u.Dim() != 2 {
		t.Fatalf("Len/Dim = %d/%d", u.Len(), u.Dim())
	}
	spec := QuerySpec{Center: []float64{250, 250}, Cov: paperCov(3), Delta: 20, Theta: 0.05}
	ids, err := u.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Every returned id clears θ; every omitted nearby id does not.
	seen := make(map[int64]bool)
	for _, id := range ids {
		seen[id] = true
		p, err := u.QueryProb(spec, id)
		if err != nil {
			t.Fatal(err)
		}
		if p < spec.Theta {
			t.Fatalf("answer %d has p = %g < θ", id, p)
		}
	}
	for id := int64(0); id < int64(n); id++ {
		if seen[id] {
			continue
		}
		d := math.Hypot(means[id][0]-250, means[id][1]-250)
		if d > 100 {
			continue // skip clearly-out objects for speed
		}
		p, err := u.QueryProb(spec, id)
		if err != nil {
			t.Fatal(err)
		}
		if p >= spec.Theta+1e-9 {
			t.Fatalf("object %d with p = %g was omitted", id, p)
		}
	}
	// Dimension mismatch.
	if _, err := u.Query(QuerySpec{Center: []float64{1}, Cov: paperCov(1), Delta: 1, Theta: 0.1}); err == nil {
		t.Error("dim mismatch accepted")
	}
}

// An all-exact UncertainDB must agree with the plain DB.
func TestUncertainDBReducesToExact(t *testing.T) {
	pts := gridPoints(2500, 20)
	u, err := LoadUncertain(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Load(pts)
	if err != nil {
		t.Fatal(err)
	}
	spec := QuerySpec{Center: []float64{500, 500}, Cov: paperCov(10), Delta: 25, Theta: 0.01}
	a, err := u.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b.IDs) {
		t.Fatalf("uncertain %d vs exact %d answers", len(a), len(b.IDs))
	}
	for i := range a {
		if a[i] != b.IDs[i] {
			t.Fatal("answer sets differ")
		}
	}
}
