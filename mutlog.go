package gaussrange

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"

	"gaussrange/internal/vecmat"
	"gaussrange/internal/wal"
)

// mutlogMagic identifies the append-only single-file mutation log, version 1.
// The file is a header followed by one record per published mutation batch:
//
//	header:  magic[6] | dim uint32
//	record:  wal.Codec record with Chained false (unchained CRC)
//
// The record layout (epoch, counts, points, deletes, optional explicit ids,
// CRC) is shared with the segmented wal — see wal.Codec — and predates it:
// existing GRLGv1 logs stay byte-compatible. A torn final record (crash
// mid-append) is detected and truncated on replay instead of poisoning the
// log. For the group-commit segmented successor with tamper-evident lineage
// and follower shipping, see DB.AttachWAL.
var mutlogMagic = [6]byte{'G', 'R', 'L', 'G', 'v', '1'}

// maxLogBatch bounds the insert/delete counts a record may claim.
const maxLogBatch = wal.MaxBatch

// MutationLog is an append-only journal of published mutation batches.
// Paired with an epoch-stamped snapshot it makes the mutable database
// durable: on restart, replay applies every logged batch newer than the
// snapshot's epoch, reproducing the exact pre-crash epoch and id
// assignment (ids are deterministic, so no id mapping is stored).
//
// Appends go through the OS page cache without fsync; call Sync to force
// durability at a barrier (e.g. after a checkpoint).
type MutationLog struct {
	mu   sync.Mutex
	f    *os.File
	dim  int
	path string
}

// OpenMutationLog opens (creating if absent) the mutation log at path for a
// database of the given dimensionality. An existing log's header must match
// dim.
func OpenMutationLog(path string, dim int) (*MutationLog, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("gaussrange: invalid mutation log dimension %d", dim)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	lg := &MutationLog{f: f, dim: dim, path: path}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		var hdr [10]byte
		copy(hdr[:6], mutlogMagic[:])
		binary.LittleEndian.PutUint32(hdr[6:], uint32(dim))
		if _, err := f.Write(hdr[:]); err != nil {
			f.Close()
			return nil, err
		}
		return lg, nil
	}
	var hdr [10]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("gaussrange: reading mutation log header: %w", err)
	}
	if [6]byte(hdr[:6]) != mutlogMagic {
		f.Close()
		return nil, fmt.Errorf("gaussrange: %s is not a mutation log (bad magic)", path)
	}
	if got := binary.LittleEndian.Uint32(hdr[6:]); got != uint32(dim) {
		f.Close()
		return nil, fmt.Errorf("gaussrange: mutation log dim %d vs database dim %d", got, dim)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return lg, nil
}

// Path returns the log's file path.
func (lg *MutationLog) Path() string { return lg.path }

// Sync flushes appended records to stable storage.
func (lg *MutationLog) Sync() error {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	return lg.f.Sync()
}

// Close closes the underlying file. The log must not be attached to a DB
// that will still mutate.
func (lg *MutationLog) Close() error {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	return lg.f.Close()
}

// append writes one record. Called with DB.writeMu held, so record order
// equals epoch order; the deleted flags are not stored because replaying the
// same batch against the same lineage reproduces them. A non-nil insertIDs
// (one per insert) writes an explicit-id record.
func (lg *MutationLog) append(epoch uint64, inserts [][]float64, insertIDs []int64, deletes []int64, _ []bool) error {
	c := wal.Codec{Dim: lg.dim}
	body, _, err := c.Append(nil, wal.Record{
		Epoch:     epoch,
		Inserts:   inserts,
		InsertIDs: insertIDs,
		Deletes:   deletes,
	}, 0)
	if err != nil {
		return fmt.Errorf("gaussrange: log %w", err)
	}
	lg.mu.Lock()
	defer lg.mu.Unlock()
	_, err = lg.f.Write(body)
	return err
}

// readRecords decodes every intact record, returning them in file order and
// the offset just past the last intact record. A torn or corrupt tail stops
// decoding without error — crash recovery truncates there.
func readRecords(f *os.File, dim int) (recs []wal.Record, goodEnd int64, err error) {
	if _, err := f.Seek(10, io.SeekStart); err != nil {
		return nil, 0, err
	}
	goodEnd = 10
	c := wal.Codec{Dim: dim}
	br := bufio.NewReader(f)
	for {
		rec, n, _, err := c.Read(br, 0)
		if err != nil {
			// io.EOF is a clean end; anything else is a torn or corrupt
			// tail — keep what decoded cleanly and let recovery truncate.
			return recs, goodEnd, nil
		}
		recs = append(recs, rec)
		goodEnd += n
	}
}

// AttachMutationLog opens (creating if absent) the mutation log at path,
// replays every logged batch newer than the database's current epoch, then
// attaches the log so later mutations append to it. It returns the number of
// batches replayed. A torn final record (crash mid-append) is truncated; a
// gap between the database epoch and the first applicable record, or a
// replay that does not reproduce the logged epochs, is a lineage error.
//
// The intended restart sequence is RestoreFile (epoch-stamped snapshot)
// followed by AttachMutationLog with the log that was attached when the
// snapshot was saved.
func (db *DB) AttachMutationLog(path string) (replayed int, err error) {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	if db.mlog != nil {
		return 0, fmt.Errorf("gaussrange: a mutation log is already attached")
	}
	if db.wal.Load() != nil {
		return 0, fmt.Errorf("gaussrange: a wal is already attached")
	}
	lg, err := OpenMutationLog(path, db.dim)
	if err != nil {
		return 0, err
	}
	recs, goodEnd, err := readRecords(lg.f, db.dim)
	if err != nil {
		lg.Close()
		return 0, err
	}
	st, err := lg.f.Stat()
	if err != nil {
		lg.Close()
		return 0, err
	}
	if st.Size() > goodEnd {
		if err := lg.f.Truncate(goodEnd); err != nil {
			lg.Close()
			return 0, fmt.Errorf("gaussrange: truncating torn log tail: %w", err)
		}
	}
	if _, err := lg.f.Seek(0, io.SeekEnd); err != nil {
		lg.Close()
		return 0, err
	}

	for _, rec := range recs {
		cur := db.idx.Epoch()
		if rec.Epoch <= cur {
			continue // already folded into the restored snapshot
		}
		if rec.Epoch != cur+1 {
			lg.Close()
			return replayed, fmt.Errorf("gaussrange: mutation log gap: at epoch %d, next record is epoch %d", cur, rec.Epoch)
		}
		vecs := make([]vecmat.Vector, len(rec.Inserts))
		for i, p := range rec.Inserts {
			vecs[i] = vecmat.Vector(p)
		}
		var got uint64
		if rec.InsertIDs != nil {
			_, got, err = db.idx.ApplyWithIDs(vecs, rec.InsertIDs, rec.Deletes)
		} else {
			_, _, got, err = db.idx.Apply(vecs, rec.Deletes)
		}
		if err != nil {
			lg.Close()
			return replayed, fmt.Errorf("gaussrange: replaying epoch %d: %w", rec.Epoch, err)
		}
		if got != rec.Epoch {
			lg.Close()
			return replayed, fmt.Errorf("gaussrange: replay diverged: record epoch %d produced epoch %d (snapshot/log lineage mismatch)", rec.Epoch, got)
		}
		replayed++
	}
	db.mlog = lg
	return replayed, nil
}

// DetachMutationLog detaches and closes the attached mutation log, if any.
// Later mutations are no longer journaled.
func (db *DB) DetachMutationLog() error {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	if db.mlog == nil {
		return nil
	}
	lg := db.mlog
	db.mlog = nil
	return lg.Close()
}

// SyncLog flushes the attached mutation log to stable storage (no-op when
// none is attached).
func (db *DB) SyncLog() error {
	db.writeMu.Lock()
	lg := db.mlog
	db.writeMu.Unlock()
	if lg == nil {
		return nil
	}
	return lg.Sync()
}
