package gaussrange

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"

	"gaussrange/internal/vecmat"
)

// mutlogMagic identifies the append-only mutation log, version 1. The file
// is a header followed by one record per published mutation batch:
//
//	header:  magic[6] | dim uint32
//	record:  epoch uint64 | nIns uint32 | nDel uint32 |
//	         nIns·dim float64 | nDel int64 | [nIns int64 ids] | crc uint32
//
// All integers and floats are little-endian; each record's CRC covers its
// own bytes, so a torn final record (crash mid-append) is detected and
// truncated on replay instead of poisoning the log.
//
// A record whose inserts carry caller-assigned identifiers (ApplyWithIDs,
// used by the shard router's global id allocator) sets explicitIDFlag on the
// nIns field and appends the ids after the deletes; replay then routes
// through ApplyWithIDs so the exact id assignment is reproduced. The flag bit
// cannot collide with a count because counts are capped at maxLogBatch.
var mutlogMagic = [6]byte{'G', 'R', 'L', 'G', 'v', '1'}

// explicitIDFlag marks a record whose inserts carry explicit identifiers.
const explicitIDFlag = uint32(1) << 31

// maxLogBatch bounds the insert/delete counts a record may claim, keeping
// corrupt headers from provoking huge allocations.
const maxLogBatch = 1 << 24

// MutationLog is an append-only journal of published mutation batches.
// Paired with an epoch-stamped snapshot it makes the mutable database
// durable: on restart, replay applies every logged batch newer than the
// snapshot's epoch, reproducing the exact pre-crash epoch and id
// assignment (ids are deterministic, so no id mapping is stored).
//
// Appends go through the OS page cache without fsync; call Sync to force
// durability at a barrier (e.g. after a checkpoint).
type MutationLog struct {
	mu   sync.Mutex
	f    *os.File
	dim  int
	path string
}

// OpenMutationLog opens (creating if absent) the mutation log at path for a
// database of the given dimensionality. An existing log's header must match
// dim.
func OpenMutationLog(path string, dim int) (*MutationLog, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("gaussrange: invalid mutation log dimension %d", dim)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	lg := &MutationLog{f: f, dim: dim, path: path}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		var hdr [10]byte
		copy(hdr[:6], mutlogMagic[:])
		binary.LittleEndian.PutUint32(hdr[6:], uint32(dim))
		if _, err := f.Write(hdr[:]); err != nil {
			f.Close()
			return nil, err
		}
		return lg, nil
	}
	var hdr [10]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("gaussrange: reading mutation log header: %w", err)
	}
	if [6]byte(hdr[:6]) != mutlogMagic {
		f.Close()
		return nil, fmt.Errorf("gaussrange: %s is not a mutation log (bad magic)", path)
	}
	if got := binary.LittleEndian.Uint32(hdr[6:]); got != uint32(dim) {
		f.Close()
		return nil, fmt.Errorf("gaussrange: mutation log dim %d vs database dim %d", got, dim)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return lg, nil
}

// Path returns the log's file path.
func (lg *MutationLog) Path() string { return lg.path }

// Sync flushes appended records to stable storage.
func (lg *MutationLog) Sync() error {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	return lg.f.Sync()
}

// Close closes the underlying file. The log must not be attached to a DB
// that will still mutate.
func (lg *MutationLog) Close() error {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	return lg.f.Close()
}

// append writes one record. Called with DB.writeMu held, so record order
// equals epoch order; the deleted flags are not stored because replaying the
// same batch against the same lineage reproduces them. A non-nil insertIDs
// (one per insert) writes an explicit-id record.
func (lg *MutationLog) append(epoch uint64, inserts [][]float64, insertIDs []int64, deletes []int64, _ []bool) error {
	if len(inserts) > maxLogBatch || len(deletes) > maxLogBatch {
		return fmt.Errorf("gaussrange: log batch too large: %d inserts / %d deletes", len(inserts), len(deletes))
	}
	if insertIDs != nil && len(insertIDs) != len(inserts) {
		return fmt.Errorf("gaussrange: log batch has %d ids for %d inserts", len(insertIDs), len(inserts))
	}
	body := make([]byte, 0, 16+8*len(inserts)*lg.dim+8*len(deletes)+8*len(insertIDs))
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], epoch)
	body = append(body, b8[:]...)
	var b4 [4]byte
	nIns := uint32(len(inserts))
	if insertIDs != nil {
		nIns |= explicitIDFlag
	}
	binary.LittleEndian.PutUint32(b4[:], nIns)
	body = append(body, b4[:]...)
	binary.LittleEndian.PutUint32(b4[:], uint32(len(deletes)))
	body = append(body, b4[:]...)
	for i, p := range inserts {
		if len(p) != lg.dim {
			return fmt.Errorf("gaussrange: log insert %d has dim %d, want %d", i, len(p), lg.dim)
		}
		for _, x := range p {
			binary.LittleEndian.PutUint64(b8[:], math.Float64bits(x))
			body = append(body, b8[:]...)
		}
	}
	for _, id := range deletes {
		binary.LittleEndian.PutUint64(b8[:], uint64(id))
		body = append(body, b8[:]...)
	}
	for _, id := range insertIDs {
		binary.LittleEndian.PutUint64(b8[:], uint64(id))
		body = append(body, b8[:]...)
	}
	binary.LittleEndian.PutUint32(b4[:], crc32.ChecksumIEEE(body))
	body = append(body, b4[:]...)

	lg.mu.Lock()
	defer lg.mu.Unlock()
	_, err := lg.f.Write(body)
	return err
}

// logRecord is one decoded mutation batch. insertIDs is nil for sequential
// records and one id per insert for explicit-id records.
type logRecord struct {
	epoch     uint64
	inserts   [][]float64
	insertIDs []int64
	deletes   []int64
}

// readRecords decodes every intact record, returning them in file order and
// the offset just past the last intact record. A torn or corrupt tail stops
// decoding without error — crash recovery truncates there.
func readRecords(f *os.File, dim int) (recs []logRecord, goodEnd int64, err error) {
	if _, err := f.Seek(10, io.SeekStart); err != nil {
		return nil, 0, err
	}
	goodEnd = 10
	br := bufio.NewReader(f)
	for {
		rec, n, err := readRecord(br, dim)
		if err == io.EOF {
			return recs, goodEnd, nil
		}
		if err != nil {
			// Torn tail: keep what decoded cleanly.
			return recs, goodEnd, nil
		}
		recs = append(recs, rec)
		goodEnd += n
	}
}

// readRecord decodes one record, verifying its CRC. Returns io.EOF at a
// clean end of file and any other error on a torn or corrupt record.
func readRecord(br *bufio.Reader, dim int) (logRecord, int64, error) {
	head := make([]byte, 16)
	if _, err := io.ReadFull(br, head); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = io.ErrNoProgress
		}
		return logRecord{}, 0, err
	}
	nIns := binary.LittleEndian.Uint32(head[8:12])
	explicit := nIns&explicitIDFlag != 0
	nIns &^= explicitIDFlag
	nDel := binary.LittleEndian.Uint32(head[12:16])
	if nIns > maxLogBatch || nDel > maxLogBatch {
		return logRecord{}, 0, fmt.Errorf("gaussrange: log record claims %d inserts / %d deletes", nIns, nDel)
	}
	nIDs := 0
	if explicit {
		nIDs = int(nIns)
	}
	payload := make([]byte, 8*int(nIns)*dim+8*int(nDel)+8*nIDs)
	if _, err := io.ReadFull(br, payload); err != nil {
		return logRecord{}, 0, io.ErrNoProgress
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
		return logRecord{}, 0, io.ErrNoProgress
	}
	crc := crc32.NewIEEE()
	crc.Write(head)
	crc.Write(payload)
	if binary.LittleEndian.Uint32(crcBuf[:]) != crc.Sum32() {
		return logRecord{}, 0, fmt.Errorf("gaussrange: log record checksum mismatch")
	}

	rec := logRecord{epoch: binary.LittleEndian.Uint64(head[:8])}
	off := 0
	if nIns > 0 {
		rec.inserts = make([][]float64, nIns)
		for i := range rec.inserts {
			p := make([]float64, dim)
			for j := range p {
				p[j] = math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
				off += 8
			}
			rec.inserts[i] = p
		}
	}
	if nDel > 0 {
		rec.deletes = make([]int64, nDel)
		for i := range rec.deletes {
			rec.deletes[i] = int64(binary.LittleEndian.Uint64(payload[off:]))
			off += 8
		}
	}
	if explicit {
		rec.insertIDs = make([]int64, nIns)
		for i := range rec.insertIDs {
			rec.insertIDs[i] = int64(binary.LittleEndian.Uint64(payload[off:]))
			off += 8
		}
	}
	return rec, int64(len(head) + len(payload) + len(crcBuf)), nil
}

// AttachMutationLog opens (creating if absent) the mutation log at path,
// replays every logged batch newer than the database's current epoch, then
// attaches the log so later mutations append to it. It returns the number of
// batches replayed. A torn final record (crash mid-append) is truncated; a
// gap between the database epoch and the first applicable record, or a
// replay that does not reproduce the logged epochs, is a lineage error.
//
// The intended restart sequence is RestoreFile (epoch-stamped snapshot)
// followed by AttachMutationLog with the log that was attached when the
// snapshot was saved.
func (db *DB) AttachMutationLog(path string) (replayed int, err error) {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	if db.mlog != nil {
		return 0, fmt.Errorf("gaussrange: a mutation log is already attached")
	}
	lg, err := OpenMutationLog(path, db.dim)
	if err != nil {
		return 0, err
	}
	recs, goodEnd, err := readRecords(lg.f, db.dim)
	if err != nil {
		lg.Close()
		return 0, err
	}
	st, err := lg.f.Stat()
	if err != nil {
		lg.Close()
		return 0, err
	}
	if st.Size() > goodEnd {
		if err := lg.f.Truncate(goodEnd); err != nil {
			lg.Close()
			return 0, fmt.Errorf("gaussrange: truncating torn log tail: %w", err)
		}
	}
	if _, err := lg.f.Seek(0, io.SeekEnd); err != nil {
		lg.Close()
		return 0, err
	}

	for _, rec := range recs {
		cur := db.idx.Epoch()
		if rec.epoch <= cur {
			continue // already folded into the restored snapshot
		}
		if rec.epoch != cur+1 {
			lg.Close()
			return replayed, fmt.Errorf("gaussrange: mutation log gap: at epoch %d, next record is epoch %d", cur, rec.epoch)
		}
		vecs := make([]vecmat.Vector, len(rec.inserts))
		for i, p := range rec.inserts {
			vecs[i] = vecmat.Vector(p)
		}
		var got uint64
		if rec.insertIDs != nil {
			_, got, err = db.idx.ApplyWithIDs(vecs, rec.insertIDs, rec.deletes)
		} else {
			_, _, got, err = db.idx.Apply(vecs, rec.deletes)
		}
		if err != nil {
			lg.Close()
			return replayed, fmt.Errorf("gaussrange: replaying epoch %d: %w", rec.epoch, err)
		}
		if got != rec.epoch {
			lg.Close()
			return replayed, fmt.Errorf("gaussrange: replay diverged: record epoch %d produced epoch %d (snapshot/log lineage mismatch)", rec.epoch, got)
		}
		replayed++
	}
	db.mlog = lg
	return replayed, nil
}

// DetachMutationLog detaches and closes the attached mutation log, if any.
// Later mutations are no longer journaled.
func (db *DB) DetachMutationLog() error {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	if db.mlog == nil {
		return nil
	}
	lg := db.mlog
	db.mlog = nil
	return lg.Close()
}

// SyncLog flushes the attached mutation log to stable storage (no-op when
// none is attached).
func (db *DB) SyncLog() error {
	db.writeMu.Lock()
	lg := db.mlog
	db.writeMu.Unlock()
	if lg == nil {
		return nil
	}
	return lg.Sync()
}
