package replica

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"gaussrange"
)

func leaderAndFollower(t *testing.T, dir string) (*gaussrange.DB, *gaussrange.DB, *Follower) {
	t.Helper()
	leader, err := gaussrange.Open(2, gaussrange.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := leader.AttachWAL(gaussrange.WALConfig{Dir: dir, CommitWindow: time.Millisecond, SegmentBytes: 512}); err != nil {
		t.Fatal(err)
	}
	fdb, err := gaussrange.Open(2, gaussrange.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(fdb, Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return leader, fdb, f
}

func TestFollowerReplaysLeader(t *testing.T) {
	dir := t.TempDir()
	leader, fdb, f := leaderAndFollower(t, dir)
	defer leader.DetachWAL()
	defer f.Stop()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := leader.Insert([]float64{float64(w), float64(i)}); err != nil {
					t.Errorf("insert: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
	if _, _, _, err := leader.Apply(nil, []int64{3, 17}); err != nil {
		t.Fatal(err)
	}

	if _, err := f.CatchUp(); err != nil {
		t.Fatal(err)
	}
	if fdb.Epoch() != leader.Epoch() {
		t.Fatalf("follower epoch %d, leader %d", fdb.Epoch(), leader.Epoch())
	}
	if fdb.Len() != leader.Len() || fdb.MaxID() != leader.MaxID() {
		t.Fatalf("follower len/maxid %d/%d, leader %d/%d", fdb.Len(), fdb.MaxID(), leader.Len(), leader.MaxID())
	}
	// Answers must be byte-identical at the same epoch.
	spec := gaussrange.QuerySpec{Center: []float64{3, 2}, Cov: [][]float64{{4, 0}, {0, 4}}, Delta: 3, Theta: 0.1}
	lr, err := leader.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := fdb.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lr.IDs, fr.IDs) || lr.Epoch != fr.Epoch {
		t.Fatalf("follower answer diverged: leader %v@%d, follower %v@%d", lr.IDs, lr.Epoch, fr.IDs, fr.Epoch)
	}
	st := f.Stats()
	if st.Applied == 0 || st.SegmentsVerified == 0 || st.Err != "" {
		t.Fatalf("stats: %+v", st)
	}
}

func TestFollowerBackgroundTail(t *testing.T) {
	dir := t.TempDir()
	leader, fdb, f := leaderAndFollower(t, dir)
	defer leader.DetachWAL()
	f2 := f
	f2.interval = 5 * time.Millisecond
	f2.Start()
	defer f2.Stop()

	for i := 0; i < 10; i++ {
		if _, err := leader.Insert([]float64{float64(i), 0}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for fdb.Epoch() < leader.Epoch() {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at epoch %d, leader at %d (err %v)", fdb.Epoch(), leader.Epoch(), f2.Err())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestFollowerRefusesRewrittenHistory(t *testing.T) {
	dir := t.TempDir()
	leader, _, f := leaderAndFollower(t, dir)
	for i := 0; i < 40; i++ { // enough to seal several 512-byte segments
		if _, err := leader.Insert([]float64{float64(i), 1}); err != nil {
			t.Fatal(err)
		}
	}
	leader.DetachWAL()

	// Tamper with a sealed mid-history segment payload byte.
	segs, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil || len(segs) < 3 {
		t.Fatalf("want ≥3 segments, got %d", len(segs))
	}
	mid := segs[1]
	data, err := os.ReadFile(mid)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-10] ^= 0xff
	if err := os.WriteFile(mid, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := f.CatchUp(); err == nil {
		t.Fatal("follower replayed tampered history")
	}
	// The error is sticky; the follower serves its last good epoch only.
	if _, err := f.CatchUp(); err == nil {
		t.Fatal("error did not stick")
	}
	if st := f.Stats(); st.Err == "" {
		t.Fatalf("stats hide the error: %+v", st)
	}
	f.Stop()
}

func TestFollowerRejectsJournalingDB(t *testing.T) {
	dir := t.TempDir()
	db, err := gaussrange.Open(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AttachWAL(gaussrange.WALConfig{Dir: filepath.Join(dir, "own")}); err != nil {
		t.Fatal(err)
	}
	defer db.DetachWAL()
	if _, err := New(db, Config{Dir: filepath.Join(dir, "leader")}); err == nil {
		t.Fatal("follower accepted a journaling DB")
	}
}

func TestDirDim(t *testing.T) {
	dir := t.TempDir()
	if _, err := DirDim(dir); err == nil {
		t.Fatal("empty dir reported a dim")
	}
	leader, err := gaussrange.Open(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := leader.AttachWAL(gaussrange.WALConfig{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	if _, err := leader.Insert([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	leader.DetachWAL()
	dim, err := DirDim(dir)
	if err != nil {
		t.Fatal(err)
	}
	if dim != 3 {
		t.Fatalf("dim = %d, want 3", dim)
	}
}
