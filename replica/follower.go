// Package replica implements follower read replicas over the shipped
// write-ahead log: a Follower tails a leader's segment store (a directory
// today; the Reader interface underneath leaves room for object storage),
// verifies each segment's lineage root against the chain, and replays every
// committed group into a local DB so the follower can serve reads at a
// recent epoch while the leader takes the writes.
//
// The replication unit is the log record: one record per commit group, one
// epoch per record, with the exact insert ids the leader assigned — so a
// follower's id space, epochs and answers are byte-identical to the
// leader's at the same epoch. The follower must begin from the same base
// state the leader's log begins after: the leader's epoch-stamped snapshot,
// the same initial dataset, or an empty database when the leader journaled
// its whole history. The log itself only certifies epoch continuity, so a
// mismatched base surfaces as a replay error on the first delete of an
// unknown id — or, for insert-only histories, as a diverging point count in
// health checks rather than an in-band error. Lineage is verified end-to-end: the follower
// refuses a segment whose header does not extend the rolling root it
// finished the previous segment with, which makes a rewritten or spliced
// history detectable rather than silently divergent.
package replica

import (
	"fmt"
	"sync"
	"time"

	"gaussrange"
	"gaussrange/internal/wal"
)

// DefaultInterval is the default poll interval for Follower.Start.
const DefaultInterval = 100 * time.Millisecond

// Config configures a Follower.
type Config struct {
	// Dir is the leader's segment store directory (shipped or shared).
	// Required.
	Dir string
	// Interval is the tail poll cadence for Start (default 100ms).
	Interval time.Duration
}

// Stats is a snapshot of a follower's replication state.
type Stats struct {
	// Epoch is the storage epoch the local DB has replayed to.
	Epoch uint64
	// Applied counts records replayed by this follower (excluding records
	// at or below the restored snapshot's epoch, which are skipped).
	Applied uint64
	// Skipped counts records already covered by the restored snapshot.
	Skipped uint64
	// SegmentsVerified counts segments whose header lineage checked out.
	SegmentsVerified int
	// Polls counts CatchUp passes (manual or timer-driven).
	Polls uint64
	// Err is the sticky replication error, if any ("" = healthy). A
	// follower with a non-empty Err keeps serving reads at its last good
	// epoch but applies nothing further.
	Err string
}

// Follower tails a segment store and replays committed groups into db.
// Create with New, drive with CatchUp (synchronous) or Start/Stop
// (background). The db must not have its own wal or mutation log attached:
// a follower replays the leader's journal, it does not keep one.
type Follower struct {
	db       *gaussrange.DB
	interval time.Duration

	mu      sync.Mutex
	r       *wal.Reader
	applied uint64
	skipped uint64
	polls   uint64
	err     error

	stopc chan struct{}
	done  chan struct{}
}

// DirDim reports the dimensionality recorded in dir's first segment header —
// how a follower process sizes its empty database before it has replayed
// anything. Errors until the leader has written at least one segment header.
func DirDim(dir string) (int, error) { return wal.DirDim(dir) }

// New opens a follower over cfg.Dir. The directory may be empty or not yet
// created — the follower waits for the leader's first segment.
func New(db *gaussrange.DB, cfg Config) (*Follower, error) {
	if db == nil {
		return nil, fmt.Errorf("replica: nil DB")
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("replica: Config.Dir is required")
	}
	if db.WALDir() != "" {
		return nil, fmt.Errorf("replica: the DB has a wal attached; a follower must not journal")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	r, err := wal.OpenReader(cfg.Dir, db.Dim())
	if err != nil {
		return nil, err
	}
	return &Follower{db: db, interval: cfg.Interval, r: r}, nil
}

// CatchUp replays every record currently readable and returns how many it
// applied. A torn or in-progress record at the live tail is not an error —
// the next CatchUp retries it. A lineage or replay error is sticky: the
// follower stops applying and every later CatchUp returns the same error.
func (f *Follower) CatchUp() (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.catchUpLocked()
}

func (f *Follower) catchUpLocked() (int, error) {
	f.polls++
	if f.err != nil {
		return 0, f.err
	}
	applied := 0
	for {
		rec, ok, err := f.r.Next()
		if err != nil {
			f.err = fmt.Errorf("replica: %w", err)
			return applied, f.err
		}
		if !ok {
			return applied, nil
		}
		if err := f.apply(rec); err != nil {
			f.err = err
			return applied, f.err
		}
		applied++
	}
}

// apply replays one committed group, verifying the epoch lineage exactly
// like the leader's own restart replay does.
func (f *Follower) apply(rec wal.Record) error {
	cur := f.db.Epoch()
	if rec.Epoch <= cur {
		f.skipped++
		return nil // already folded into the restored snapshot
	}
	if rec.Epoch != cur+1 {
		return fmt.Errorf("replica: log gap: at epoch %d, next record is epoch %d", cur, rec.Epoch)
	}
	var (
		got uint64
		err error
	)
	if rec.InsertIDs != nil {
		_, got, err = f.db.ApplyWithIDs(rec.Inserts, rec.InsertIDs, rec.Deletes)
	} else {
		_, _, got, err = f.db.Apply(rec.Inserts, rec.Deletes)
	}
	if err != nil {
		return fmt.Errorf("replica: replaying epoch %d: %w", rec.Epoch, err)
	}
	if got != rec.Epoch {
		return fmt.Errorf("replica: replay diverged: record epoch %d produced epoch %d (snapshot/log lineage mismatch)", rec.Epoch, got)
	}
	f.applied++
	return nil
}

// Start launches the background tailer: one CatchUp per interval until Stop.
// Errors are sticky and surface in Stats; the follower keeps serving its
// last good epoch.
func (f *Follower) Start() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.stopc != nil {
		return
	}
	f.stopc = make(chan struct{})
	f.done = make(chan struct{})
	go f.run(f.stopc, f.done)
}

func (f *Follower) run(stopc <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(f.interval)
	defer t.Stop()
	for {
		select {
		case <-stopc:
			return
		case <-t.C:
			f.CatchUp()
		}
	}
}

// Stop halts the background tailer (if running) and closes the reader.
func (f *Follower) Stop() {
	f.mu.Lock()
	stopc, done := f.stopc, f.done
	f.stopc, f.done = nil, nil
	f.mu.Unlock()
	if stopc != nil {
		close(stopc)
		<-done
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.r != nil {
		f.r.Close()
		f.r = nil
	}
}

// Epoch returns the storage epoch the follower has replayed to.
func (f *Follower) Epoch() uint64 { return f.db.Epoch() }

// Err returns the sticky replication error, or nil while healthy.
func (f *Follower) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// Stats returns a snapshot of the follower's counters.
func (f *Follower) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := Stats{
		Epoch:   f.db.Epoch(),
		Applied: f.applied,
		Skipped: f.skipped,
		Polls:   f.polls,
	}
	if f.r != nil {
		s.SegmentsVerified = f.r.Stats().SegmentsVerified
	}
	if f.err != nil {
		s.Err = f.err.Error()
	}
	return s
}
