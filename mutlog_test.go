package gaussrange

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPersistRoundTripWithDeletions saves a database that carries deletions
// and later mutations in its log, then rebuilds it with RestoreFile +
// AttachMutationLog and checks the full id space — liveness, coordinates and
// epoch — matches the original.
func TestPersistRoundTripWithDeletions(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	points := make([][]float64, 200)
	for i := range points {
		points[i] = []float64{rng.Float64() * 1000, rng.Float64() * 1000}
	}
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "db.grdb")
	logPath := filepath.Join(dir, "db.grlg")

	db, err := Load(points)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-snapshot churn: holes must survive the save.
	for id := int64(0); id < 60; id += 2 {
		if _, err := db.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, _, err := db.Apply([][]float64{{1, 1}, {2, 2}}, nil); err != nil {
		t.Fatal(err)
	}
	snapEpoch := db.Epoch()
	if err := db.SaveFile(snapPath); err != nil {
		t.Fatal(err)
	}

	// Post-snapshot churn, journaled: only the log covers these batches.
	if _, err := db.AttachMutationLog(logPath); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := db.Apply([][]float64{{3, 3}}, []int64{1, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert([]float64{4, 4}); err != nil {
		t.Fatal(err)
	}
	finalEpoch := db.Epoch()
	if err := db.SyncLog(); err != nil {
		t.Fatal(err)
	}
	if err := db.DetachMutationLog(); err != nil {
		t.Fatal(err)
	}

	// Restore the snapshot alone: the journaled batches are missing.
	mid, err := RestoreFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if mid.Epoch() != snapEpoch {
		t.Fatalf("restored epoch %d, want %d", mid.Epoch(), snapEpoch)
	}

	// Replaying the log brings it to the final epoch.
	replayed, err := mid.AttachMutationLog(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer mid.DetachMutationLog()
	if replayed != 2 {
		t.Fatalf("replayed %d batches, want 2", replayed)
	}
	if mid.Epoch() != finalEpoch {
		t.Fatalf("replayed epoch %d, want %d", mid.Epoch(), finalEpoch)
	}
	if mid.Len() != db.Len() {
		t.Fatalf("replayed Len %d, want %d", mid.Len(), db.Len())
	}
	// Compare the entire id space: ids run 0..len(points)+3.
	for id := int64(0); id < int64(len(points))+3; id++ {
		want, wantErr := db.Point(id)
		got, gotErr := mid.Point(id)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("id %d: liveness diverged (orig err %v, replayed err %v)", id, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("id %d: coords %v, want %v", id, got, want)
			}
		}
	}
}

// TestMutationLogTornTail crashes mid-append (simulated by appending half a
// record) and checks recovery: the torn bytes are truncated, every intact
// batch replays, and the log accepts new appends afterwards.
func TestMutationLogTornTail(t *testing.T) {
	seed := gridPoints(100, 10)
	logPath := filepath.Join(t.TempDir(), "mut.grlg")

	db, err := Load(seed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AttachMutationLog(logPath); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Delete(0); err != nil {
		t.Fatal(err)
	}
	if err := db.DetachMutationLog(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: half a record's worth of garbage.
	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x03, 0, 0, 0, 0, 0, 0, 0, 0x01, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	db2, err := Load(seed)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := db2.AttachMutationLog(logPath)
	if err != nil {
		t.Fatalf("recovery from torn tail failed: %v", err)
	}
	if replayed != 2 {
		t.Fatalf("replayed %d batches, want 2", replayed)
	}
	if db2.Epoch() != db.Epoch() {
		t.Fatalf("recovered epoch %d, want %d", db2.Epoch(), db.Epoch())
	}
	// The truncated log must accept and persist new batches.
	if _, err := db2.Insert([]float64{5, 6}); err != nil {
		t.Fatal(err)
	}
	if err := db2.DetachMutationLog(); err != nil {
		t.Fatal(err)
	}
	db3, err := Load(seed)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err = db3.AttachMutationLog(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer db3.DetachMutationLog()
	if replayed != 3 || db3.Epoch() != db2.Epoch() {
		t.Fatalf("after re-append: replayed %d (want 3), epoch %d (want %d)", replayed, db3.Epoch(), db2.Epoch())
	}
}

// TestMutationLogLineageErrors covers the refusal paths: an epoch gap between
// the database and the log, and a dimension mismatch in the header.
func TestMutationLogLineageErrors(t *testing.T) {
	dir := t.TempDir()
	seed := gridPoints(100, 10)

	// A log whose first record is epoch 5 cannot extend an epoch-1 database.
	gapPath := filepath.Join(dir, "gap.grlg")
	lg, err := OpenMutationLog(gapPath, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.append(5, [][]float64{{1, 1}}, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	db, err := Load(seed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AttachMutationLog(gapPath); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("epoch gap not detected: %v", err)
	}

	// Dimension mismatch is rejected at open.
	dimPath := filepath.Join(dir, "dim.grlg")
	lg, err = OpenMutationLog(dimPath, 3)
	if err != nil {
		t.Fatal(err)
	}
	lg.Close()
	if _, err := db.AttachMutationLog(dimPath); err == nil || !strings.Contains(err.Error(), "dim") {
		t.Fatalf("dimension mismatch not detected: %v", err)
	}

	// Double attach is refused.
	okPath := filepath.Join(dir, "ok.grlg")
	if _, err := db.AttachMutationLog(okPath); err != nil {
		t.Fatal(err)
	}
	defer db.DetachMutationLog()
	if _, err := db.AttachMutationLog(okPath); err == nil {
		t.Fatal("second AttachMutationLog accepted")
	}
}
