GO ?= go

.PHONY: build test bench verify race vet fmt-check fuzz-smoke serve-smoke bench-snapshot bench-compare

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem .

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# fmt-check fails if any file is not gofmt-clean (prints the offenders).
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# fuzz-smoke runs the R*-tree structural fuzzer briefly — enough to catch
# invariant regressions in insert/delete/rebuild without a dedicated fuzz
# farm.
fuzz-smoke:
	$(GO) test ./internal/rtree -run '^$$' -fuzz FuzzTreeOps -fuzztime 10s

# verify is the pre-merge gate: formatting, static analysis, and the
# race-enabled test suite (the storage engine, plan cache, worker pools,
# QueryBatch and the query server are concurrency-heavy).
verify: fmt-check vet race
	@echo "verify: OK"

# bench-snapshot regenerates BENCH_phase3.json, the committed Phase-3 kernel
# comparison (per-candidate vs shared-flat vs shared-grid vs shared-early vs
# tiered).
bench-snapshot:
	GO="$(GO)" ./scripts/bench_snapshot.sh

# bench-compare reruns the Phase-3 kernel comparison and gates on the
# committed BENCH_phase3.json: it fails if the shared kernels' answers
# diverge, if shared-early's samples_touched relative to shared-grid
# regresses by more than 10% against the baseline ratio, if the tiered
# kernel's answers stop matching shared-flat / stop being worker-count
# deterministic, or if its tier-0–2 (sample-free) closure rate drops below
# 70% of Phase-3 candidates. QUERIES/SAMPLES can be lowered for CI; the
# gates are scale-invariant.
BENCH_COMPARE_QUERIES ?= 8
BENCH_COMPARE_SAMPLES ?= 50000
bench-compare:
	$(GO) run ./cmd/prqbench -queries $(BENCH_COMPARE_QUERIES) \
		-samples $(BENCH_COMPARE_SAMPLES) -seed 1 \
		-compare BENCH_phase3.json phase3

# serve-smoke boots the full network stack once: generate a dataset, start
# prqserved, answer one query through the Go client (prqquery -server), and
# shut the server down gracefully with SIGTERM.
serve-smoke:
	GO="$(GO)" ./scripts/serve_smoke.sh
