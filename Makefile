GO ?= go

.PHONY: build test bench verify race vet fmt-check fuzz-smoke serve-smoke bench-snapshot bench-compare

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem .

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# fmt-check fails if any file is not gofmt-clean (prints the offenders).
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# fuzz-smoke runs the R*-tree fuzzers briefly — enough to catch invariant
# regressions in insert/delete/rebuild and packed-vs-pointer search parity
# without a dedicated fuzz farm. `go test` accepts only one -fuzz target per
# invocation, so the 10s budget is split across the two fuzzers.
fuzz-smoke:
	$(GO) test ./internal/rtree -run '^$$' -fuzz FuzzTreeOps -fuzztime 5s
	$(GO) test ./internal/rtree -run '^$$' -fuzz FuzzPackedSearch -fuzztime 5s

# verify is the pre-merge gate: formatting, static analysis, and the
# race-enabled test suite (the storage engine, plan cache, worker pools,
# QueryBatch and the query server are concurrency-heavy).
verify: fmt-check vet race
	@echo "verify: OK"

# bench-snapshot regenerates the committed benchmark artifacts:
# BENCH_phase3.json (Phase-3 kernel comparison), BENCH_churn.json (read
# latency under live mutations), BENCH_shard.json (sharded scatter-gather
# serving) and BENCH_phase1.json (packed+fused front half vs pointer tree).
bench-snapshot:
	GO="$(GO)" ./scripts/bench_snapshot.sh

# bench-compare reruns the Phase-3 kernel comparison and gates on the
# committed BENCH_phase3.json: it fails if the shared kernels' answers
# diverge, if shared-early's samples_touched relative to shared-grid
# regresses by more than 10% against the baseline ratio, if the tiered
# kernel's answers stop matching shared-flat / stop being worker-count
# deterministic, or if its tier-0–2 (sample-free) closure rate drops below
# 70% of Phase-3 candidates, or if the shared-batch kernel's batch=16
# amortized Phase-3 time stops being at least 2x better than shared-early's
# per-query time (or its answers stop matching per-query execution).
# QUERIES/SAMPLES can be lowered for CI; the gates are scale-invariant
# (same-run ratios, and the batch row always runs at batch=16). The second run gates the sharded serving path
# on the committed BENCH_shard.json: routed answers must stay id-identical
# to the unsharded DB, K=4 must keep its modelled >=3x speedup (2.7x with
# CI jitter headroom), viewport fan-out must stay below K, and the router's
# scatter overhead must not regress more than 25% against the baseline.
# The third run gates the group-commit write pipeline on the committed
# BENCH_churn.json ingest section: grouped commit must sustain >=5x the
# synchronous per-batch-fsync insert rate at 64 concurrent writers in the
# same run, and a deterministic mutation sequence must stay byte-identical
# (epochs and answers) across synchronous commit, grouped commit, and
# follower replay of the grouped log. The fourth run gates the packed+fused
# Phase-1/2 front half on the committed BENCH_phase1.json: the fused arm's
# answer ids and per-phase counters must stay identical to the pointer
# baseline's, and its front-half (IndexTime+FilterTime) speedup over the
# pointer arm must stay >=2x in the same run.
BENCH_COMPARE_QUERIES ?= 8
BENCH_COMPARE_SAMPLES ?= 50000
SHARD_COMPARE_QUERIES ?= 1200
SHARD_COMPARE_WORKERS ?= 64
bench-compare:
	$(GO) run ./cmd/prqbench -queries $(BENCH_COMPARE_QUERIES) \
		-samples $(BENCH_COMPARE_SAMPLES) -seed 1 \
		-compare BENCH_phase3.json phase3
	$(GO) run ./cmd/prqbench -queries $(SHARD_COMPARE_QUERIES) \
		-workers $(SHARD_COMPARE_WORKERS) -seed 1 \
		-compare BENCH_shard.json shard
	$(GO) run ./cmd/prqbench -seed 1 -compare BENCH_churn.json churn
	$(GO) run ./cmd/prqbench -seed 1 -compare BENCH_phase1.json phase1

# serve-smoke boots the full network stack once: generate a dataset, start
# prqserved, answer one query through the Go client (prqquery -server), and
# shut the server down gracefully with SIGTERM.
serve-smoke:
	GO="$(GO)" ./scripts/serve_smoke.sh
