GO ?= go

.PHONY: build test bench verify race vet serve-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem .

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# verify is the pre-merge gate: static analysis plus the race-enabled test
# suite (the plan cache, worker pools, QueryBatch and the query server are
# concurrency-heavy).
verify: vet race
	@echo "verify: OK"

# serve-smoke boots the full network stack once: generate a dataset, start
# prqserved, answer one query through the Go client (prqquery -server), and
# shut the server down gracefully with SIGTERM.
serve-smoke:
	GO="$(GO)" ./scripts/serve_smoke.sh
