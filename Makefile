GO ?= go

.PHONY: build test bench verify race vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem .

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# verify is the pre-merge gate: static analysis plus the race-enabled test
# suite (the plan cache, worker pools and QueryBatch are concurrency-heavy).
verify: vet race
	@echo "verify: OK"
