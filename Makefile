GO ?= go

.PHONY: build test bench verify race vet serve-smoke bench-snapshot

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem .

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# verify is the pre-merge gate: static analysis plus the race-enabled test
# suite (the plan cache, worker pools, QueryBatch and the query server are
# concurrency-heavy).
verify: vet race
	@echo "verify: OK"

# bench-snapshot regenerates BENCH_phase3.json, the committed Phase-3 kernel
# comparison (per-candidate vs shared-flat vs shared-grid).
bench-snapshot:
	GO="$(GO)" ./scripts/bench_snapshot.sh

# serve-smoke boots the full network stack once: generate a dataset, start
# prqserved, answer one query through the Go client (prqquery -server), and
# shut the server down gracefully with SIGTERM.
serve-smoke:
	GO="$(GO)" ./scripts/serve_smoke.sh
