module gaussrange

go 1.22
