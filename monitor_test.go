package gaussrange

import (
	"context"
	"errors"
	"testing"
)

func TestMonitorEndToEnd(t *testing.T) {
	db, err := Load(gridPoints(10000, 10))
	if err != nil {
		t.Fatal(err)
	}
	m, err := db.NewMonitor(MonitorSpec{
		Start:    []float64{100, 500},
		StartCov: [][]float64{{1, 0}, {0, 1}},
		Delta:    15,
		Theta:    0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	first, err := m.Step()
	if err != nil {
		t.Fatal(err)
	}
	if first.Current == 0 || len(first.Entered) != first.Current || len(first.Left) != 0 {
		t.Fatalf("first step: %+v", first)
	}

	// Drive east; the answer set must churn.
	var churn int
	for i := 0; i < 6; i++ {
		if err := m.Move([]float64{20, 0}, []float64{2, 0.5}); err != nil {
			t.Fatal(err)
		}
		res, err := m.Step()
		if err != nil {
			t.Fatal(err)
		}
		churn += len(res.Entered) + len(res.Left)
		if len(m.Current()) != res.Current {
			t.Fatal("Current() inconsistent with step result")
		}
	}
	if churn == 0 {
		t.Error("no churn while moving across a dense grid")
	}

	// A sharp fix collapses uncertainty.
	mean, cov, err := m.Belief()
	if err != nil {
		t.Fatal(err)
	}
	if len(mean) != 2 || len(cov) != 2 {
		t.Fatalf("belief shape: %v %v", mean, cov)
	}
	before := cov[0][0]
	if err := m.Fix(mean, []float64{0.01, 0.01}); err != nil {
		t.Fatal(err)
	}
	_, cov, err = m.Belief()
	if err != nil {
		t.Fatal(err)
	}
	if cov[0][0] >= before {
		t.Errorf("fix did not shrink variance: %g → %g", before, cov[0][0])
	}

	// Fix-only updates change Σ (recompile); repeated steps at a settled
	// covariance reuse the compiled plan.
	compiles := m.PlanCompiles()
	if compiles == 0 {
		t.Error("monitor reported zero plan compilations after stepping")
	}
	for i := 0; i < 3; i++ {
		if _, err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.PlanCompiles(); got != compiles+1 {
		// One recompile for the post-Fix covariance, then reuse.
		t.Errorf("plan compiles after settled steps = %d, want %d", got, compiles+1)
	}

	// StepCtx honors cancellation.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.StepCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled StepCtx error = %v, want context.Canceled", err)
	}

	// Validation.
	if err := m.Move([]float64{1}, []float64{1, 1}); err == nil {
		t.Error("mismatched move accepted")
	}
	if err := m.Fix([]float64{1, 1}, []float64{1}); err == nil {
		t.Error("mismatched fix accepted")
	}
	if _, err := db.NewMonitor(MonitorSpec{Start: []float64{0, 0},
		StartCov: [][]float64{{1, 0}, {0, 1}}, Delta: 0, Theta: 0.1}); err == nil {
		t.Error("delta=0 accepted")
	}
	if _, err := db.NewMonitor(MonitorSpec{Start: []float64{0, 0},
		StartCov: [][]float64{{1, 2}, {3, 4}}, Delta: 5, Theta: 0.1}); err == nil {
		t.Error("asymmetric start covariance accepted")
	}
}
