package shard

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"reflect"
	"testing"

	"gaussrange"
	"gaussrange/client"
	"gaussrange/server"
)

// cluster is an in-process sharded deployment: K prqserved shards over
// loopback plus a router, and the equivalent unsharded reference DB.
type cluster struct {
	router *Router
	ref    *gaussrange.DB
	shards []*httptest.Server
	dbs    []*gaussrange.DB
}

func (c *cluster) close() {
	for _, ts := range c.shards {
		ts.Close()
	}
}

// newCluster splits pts into k in-process shards and builds the router and
// the unsharded reference with identical options.
func newCluster(t *testing.T, pts [][]float64, k int, opts ...gaussrange.Option) *cluster {
	t.Helper()
	m, parts, err := Split(pts, k)
	if err != nil {
		t.Fatal(err)
	}
	c := &cluster{}
	endpoints := make([]string, k)
	for i, part := range parts {
		db, err := gaussrange.LoadWithIDs(part.Points, part.IDs, opts...)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.Config{DB: db})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		c.shards = append(c.shards, ts)
		c.dbs = append(c.dbs, db)
		endpoints[i] = ts.URL
	}
	t.Cleanup(c.close)
	c.router, err = NewRouter(Config{Map: m, Endpoints: endpoints})
	if err != nil {
		t.Fatal(err)
	}
	c.ref, err = gaussrange.Load(pts, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func clusterPoints(r *rand.Rand, n int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{r.Float64() * 400, r.Float64() * 400}
	}
	return pts
}

func testSpec(center []float64) gaussrange.QuerySpec {
	return gaussrange.QuerySpec{
		Center: center,
		Cov:    [][]float64{{30, 5}, {5, 20}},
		Delta:  15,
		Theta:  0.05,
	}
}

func TestRoutedAnswersMatchUnsharded(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	pts := clusterPoints(r, 600)
	c := newCluster(t, pts, 4)
	ctx := context.Background()

	nonEmpty := 0
	for i := 0; i < 12; i++ {
		center := pts[(i*7919)%len(pts)]
		spec := testSpec(center)
		want, err := c.ref.Query(spec)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.router.Query(ctx, server.RequestFromSpec(spec))
		if err != nil {
			t.Fatal(err)
		}
		wantIDs := want.IDs
		if wantIDs == nil {
			wantIDs = []int64{}
		}
		if !reflect.DeepEqual(got.IDs, wantIDs) {
			t.Fatalf("query %d: routed %v vs unsharded %v", i, got.IDs, wantIDs)
		}
		if len(want.IDs) > 0 {
			nonEmpty++
		}
		if got.Routing == nil {
			t.Fatal("routed response missing routing info")
		}
		if got.Routing.Shards != 4 || got.Routing.Fanout < 1 || got.Routing.Fanout > 4 {
			t.Fatalf("query %d: routing %+v", i, got.Routing)
		}
		if got.Routing.Partial {
			t.Fatalf("query %d: unexpected partial", i)
		}
	}
	if nonEmpty == 0 {
		t.Fatal("every test query was empty — the comparison proves nothing")
	}
	cs := c.router.CountersSnapshot()
	if cs.MeanFanout >= 4 {
		t.Fatalf("mean fanout %.2f — rectangle pruning never skipped a shard", cs.MeanFanout)
	}
}

func TestRoutedStatsAggregate(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	pts := clusterPoints(r, 400)
	c := newCluster(t, pts, 2)
	spec := testSpec([]float64{200, 200})
	got, err := c.router.Query(context.Background(), server.RequestFromSpec(spec))
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.Retrieved == 0 {
		t.Fatal("aggregated stats empty")
	}
	if len(got.Routing.ShardEpochs) != got.Routing.Fanout {
		t.Fatalf("%d shard epochs for fanout %d", len(got.Routing.ShardEpochs), got.Routing.Fanout)
	}
}

func TestPartialFailurePolicy(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	pts := clusterPoints(r, 400)
	c := newCluster(t, pts, 4)
	ctx := context.Background()

	// A world-sized query must fan out to all 4 shards; kill one.
	spec := gaussrange.QuerySpec{
		Center: []float64{200, 200},
		Cov:    [][]float64{{5000, 0}, {0, 5000}},
		Delta:  100,
		Theta:  0.01,
	}
	req := server.RequestFromSpec(spec)
	targets, empty, err := c.router.Route(req)
	if err != nil || empty {
		t.Fatalf("route: %v empty=%v", err, empty)
	}
	if len(targets) != 4 {
		t.Fatalf("world query fans out to %v, want all 4", targets)
	}
	c.shards[2].Close()

	// Fail-closed by default.
	if _, err := c.router.Query(ctx, req); err == nil {
		t.Fatal("fail-closed query succeeded with a dead shard")
	}

	// allow_partial opts into the partial answer.
	req.AllowPartial = true
	got, err := c.router.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Routing.Partial {
		t.Fatal("partial flag not set")
	}
	if !reflect.DeepEqual(got.Routing.FailedShards, []int{2}) {
		t.Fatalf("failed shards %v, want [2]", got.Routing.FailedShards)
	}
	// The partial answer is exactly the union of the surviving shards.
	want, err := c.ref.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	lost := 0
	for _, id := range want.IDs {
		found := false
		for _, g := range got.IDs {
			if g == id {
				found = true
				break
			}
		}
		if !found {
			lost++
		}
	}
	if lost == 0 {
		t.Log("note: dead shard held no answers for this query")
	}
	for _, id := range got.IDs {
		found := false
		for _, w := range want.IDs {
			if w == id {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("partial answer invented id %d", id)
		}
	}
}

func TestMutationRouting(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	pts := clusterPoints(r, 500)
	c := newCluster(t, pts, 4)
	ctx := context.Background()

	// Inserts through the router get global ids continuing the id space, and
	// the same batch applied to the reference with those ids keeps the two
	// deployments identical.
	batch := [][]float64{{10, 10}, {390, 390}, {200, 200}, {10, 390}}
	ids, _, err := c.router.Insert(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	if ids[0] != int64(len(pts)) {
		t.Fatalf("first routed id %d, want %d", ids[0], len(pts))
	}
	if _, _, err := c.ref.ApplyWithIDs(batch, ids, nil); err != nil {
		t.Fatal(err)
	}

	// Deletes: one initial-load id and one router-allocated id.
	for _, id := range []int64{7, ids[2]} {
		deleted, _, err := c.router.Delete(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if !deleted {
			t.Fatalf("delete of live id %d reported false", id)
		}
		if _, _, err := c.ref.ApplyWithIDs(nil, nil, []int64{id}); err != nil {
			t.Fatal(err)
		}
	}
	// Idempotence.
	if deleted, _, err := c.router.Delete(ctx, 7); err != nil || deleted {
		t.Fatalf("re-delete: %v %v", deleted, err)
	}

	// Post-mutation answers still match.
	for i := 0; i < 6; i++ {
		spec := testSpec(pts[(i*101)%len(pts)])
		want, err := c.ref.Query(spec)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.router.Query(ctx, server.RequestFromSpec(spec))
		if err != nil {
			t.Fatal(err)
		}
		wantIDs := want.IDs
		if wantIDs == nil {
			wantIDs = []int64{}
		}
		if !reflect.DeepEqual(got.IDs, wantIDs) {
			t.Fatalf("post-mutation query %d: routed %v vs unsharded %v", i, got.IDs, wantIDs)
		}
	}
	// The routed points landed on the shards whose region contains them.
	for bi, p := range batch {
		if c.router.m.Locate(p) < 0 {
			t.Fatalf("batch point %d unroutable", bi)
		}
	}
}

func TestRouterHandlerEndpoints(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	pts := clusterPoints(r, 300)
	c := newCluster(t, pts, 2)
	h, err := NewHandler(HandlerConfig{Router: c.router})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h.Mux())
	defer ts.Close()

	// The router speaks the plain server protocol: the stock client works
	// against it unchanged.
	cl := client.New(ts.URL)
	ctx := context.Background()
	spec := testSpec(pts[42])
	want, err := c.ref.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Query(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := want.IDs
	if wantIDs == nil {
		wantIDs = []int64{}
	}
	if !reflect.DeepEqual(res.IDs, wantIDs) {
		t.Fatalf("handler query %v vs unsharded %v", res.IDs, wantIDs)
	}

	// Mutations through the handler.
	id, _, err := cl.InsertPoint(ctx, []float64{123, 321})
	if err != nil {
		t.Fatal(err)
	}
	if id != int64(len(pts)) {
		t.Fatalf("handler insert id %d, want %d", id, len(pts))
	}
	coords, err := cl.Point(ctx, id)
	if err != nil || coords[0] != 123 {
		t.Fatalf("handler point lookup: %v %v", coords, err)
	}
	deleted, _, err := cl.DeletePoint(ctx, id)
	if err != nil || !deleted {
		t.Fatalf("handler delete: %v %v", deleted, err)
	}
	if _, err := cl.Point(ctx, id); err == nil {
		t.Fatal("deleted id still resolves")
	}

	// Health aggregates across shards.
	hres, err := cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if hres.Points != len(pts) || hres.Dim != 2 {
		t.Fatalf("aggregated health %+v", hres)
	}
}
