package shard

import (
	"container/list"
	"encoding/binary"
	"math"
	"sync"

	"gaussrange/server"
)

// answerCache is a bounded LRU over fully-merged routed answers. An entry's
// key binds the query identity (plan fingerprint + center coordinates +
// routing epoch) to the storage-epoch frontier the router has observed, so a
// hit can only serve an answer computed against the same data version the
// router currently knows about: any response or mutation revealing a higher
// shard epoch clears the cache and advances the frontier, retiring every
// older answer at once. Partial answers are never cached — a hit is always a
// complete merge. Scatter-gather reads cost a network round trip per
// overlapping shard, so even a modest hit rate pays for the small map.
type answerCache struct {
	mu    sync.Mutex
	cap   int
	epoch uint64 // highest shard storage epoch seen in any response
	items map[string]*list.Element
	lru   *list.List // front = most recently used

	hits   uint64
	misses uint64
}

type cacheEntry struct {
	key  string
	resp server.QueryResponse
}

func newAnswerCache(capacity int) *answerCache {
	if capacity <= 0 {
		return nil
	}
	return &answerCache{cap: capacity, items: make(map[string]*list.Element), lru: list.New()}
}

// baseKey serializes the epoch-independent part of a cache key. The plan
// fingerprint covers (Σ, δ, θ, strategy) but deliberately excludes the mean,
// so the center's raw bits are appended here.
func cacheBaseKey(fp string, center []float64, routingEpoch uint64) string {
	buf := make([]byte, 0, len(fp)+8*len(center)+16)
	buf = append(buf, fp...)
	buf = binary.LittleEndian.AppendUint64(buf, routingEpoch)
	for _, v := range center {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return string(buf)
}

// keyLocked appends the current epoch frontier to a base key.
func (c *answerCache) keyLocked(base string) string {
	var ep [8]byte
	binary.LittleEndian.PutUint64(ep[:], c.epoch)
	return base + string(ep[:])
}

// get returns the cached answer for base at the current epoch frontier.
func (c *answerCache) get(base string) (server.QueryResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[c.keyLocked(base)]
	if !ok {
		c.misses++
		return server.QueryResponse{}, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).resp, true
}

// put stores a complete merged answer. The response's own epoch first
// advances the frontier (clearing older entries); an answer already behind
// the frontier is stale and is not cached.
func (c *answerCache) put(base string, resp server.QueryResponse) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.observeLocked(resp.Epoch)
	if resp.Epoch < c.epoch {
		return
	}
	key := c.keyLocked(base)
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).resp = resp
		c.lru.MoveToFront(el)
		return
	}
	c.items[key] = c.lru.PushFront(&cacheEntry{key: key, resp: resp})
	for len(c.items) > c.cap {
		el := c.lru.Back()
		c.lru.Remove(el)
		delete(c.items, el.Value.(*cacheEntry).key)
	}
}

// observeEpoch folds an epoch learned outside the query path (insert/delete
// responses) into the frontier, invalidating pre-mutation answers.
func (c *answerCache) observeEpoch(ep uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.observeLocked(ep)
}

func (c *answerCache) observeLocked(ep uint64) {
	if ep <= c.epoch {
		return
	}
	c.epoch = ep
	c.items = make(map[string]*list.Element)
	c.lru.Init()
}

// stats returns (hits, misses, live entries).
func (c *answerCache) stats() (hits, misses uint64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.items)
}
