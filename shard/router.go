package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gaussrange"
	"gaussrange/client"
	"gaussrange/server"
)

// Config configures a Router.
type Config struct {
	// Map is the shard map to route with. Required.
	Map *Map
	// Endpoints are the shard base URLs, aligned with shard ids. Required;
	// must have one entry per map shard.
	Endpoints []string
	// Fanout bounds the number of shard requests in flight per routed query
	// (0 = no bound beyond the fan-out set itself).
	Fanout int
	// AllowPartial makes partial answers the default policy when shards fail
	// (individual requests can also opt in via allow_partial). Default:
	// fail-closed — any failed shard fails the query.
	AllowPartial bool
	// ClientOptions configure every per-shard client (retries, backoff,
	// timeouts, 429 policy).
	ClientOptions []client.Option
	// Planner compiles query plans; an empty DB of the map's dimensionality
	// is created when nil. The planner's data is never read — only its plan
	// cache and compiled Phase-1 rectangles.
	Planner *gaussrange.DB
	// AnswerCacheSize bounds the router's LRU of fully-merged answers, keyed
	// on (plan fingerprint, center, routing epoch, observed shard-epoch
	// frontier); any response or routed mutation revealing a higher shard
	// epoch invalidates the whole cache. 0 disables caching.
	AnswerCacheSize int
}

// Router fans probabilistic range queries out to the shards whose routing
// region overlaps the query plan's Phase-1 search rectangle, merges the
// per-shard answers into one deterministic sorted id list, and routes
// mutations by shard-map lookup under a global id allocator. Safe for
// concurrent use.
type Router struct {
	m            *Map
	multi        *client.Multi
	planner      *gaussrange.DB
	fanout       int
	allowPartial bool
	cache        *answerCache // nil when Config.AnswerCacheSize == 0

	// Global id allocation: nextID is seeded lazily from the shard map and
	// the shards' live max ids, then handed out under idMu. owner remembers
	// which shard each router-allocated id landed on, so deletes of fresh ids
	// go to one shard instead of a broadcast.
	idMu   sync.Mutex
	synced bool
	nextID int64
	owner  map[int64]int

	// Counters for /statsz.
	queries      atomic.Uint64
	fanoutTotal  atomic.Uint64
	emptyRoutes  atomic.Uint64
	partials     atomic.Uint64
	shardErrors  atomic.Uint64
	inserts      atomic.Uint64
	deletes      atomic.Uint64
	dedupDropped atomic.Uint64
}

// NewRouter validates cfg and returns a Router.
func NewRouter(cfg Config) (*Router, error) {
	if cfg.Map == nil {
		return nil, errors.New("shard: Config.Map is required")
	}
	if err := cfg.Map.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Endpoints) != len(cfg.Map.Shards) {
		return nil, fmt.Errorf("shard: %d endpoints for %d shards", len(cfg.Endpoints), len(cfg.Map.Shards))
	}
	multi, err := client.NewMulti(cfg.Endpoints, cfg.ClientOptions...)
	if err != nil {
		return nil, err
	}
	planner := cfg.Planner
	if planner == nil {
		planner, err = gaussrange.Open(cfg.Map.Dim)
		if err != nil {
			return nil, err
		}
	}
	if planner.Dim() != cfg.Map.Dim {
		return nil, fmt.Errorf("shard: planner dim %d vs map dim %d", planner.Dim(), cfg.Map.Dim)
	}
	return &Router{
		m:            cfg.Map,
		multi:        multi,
		planner:      planner,
		fanout:       cfg.Fanout,
		allowPartial: cfg.AllowPartial,
		cache:        newAnswerCache(cfg.AnswerCacheSize),
		nextID:       cfg.Map.NextID,
		owner:        make(map[int64]int),
	}, nil
}

// Map returns the routing map.
func (r *Router) Map() *Map { return r.m }

// Endpoints returns the shard base URLs, aligned with shard ids.
func (r *Router) Endpoints() []string { return r.multi.Endpoints() }

// Route compiles (or fetches from the plan cache) the request's plan and
// returns the fan-out set: the ids of shards whose routing region overlaps
// the plan's Phase-1 search rectangle. empty reports a query whose answer
// compilation proved empty (no shard needs to run).
func (r *Router) Route(req server.QueryRequest) (targets []int, empty bool, err error) {
	lo, hi, empty, err := r.planner.PlanRegion(req.Spec())
	if err != nil {
		return nil, false, err
	}
	if empty {
		return nil, true, nil
	}
	return r.m.Overlapping(lo, hi), false, nil
}

// ErrPartial marks a fail-closed routed query that lost ≥1 shard.
var ErrPartial = errors.New("shard: incomplete answer")

// remainingMS converts a context deadline into a wire timeout_ms (0 when the
// context has none), so every shard inherits the router's remaining budget.
func remainingMS(ctx context.Context) int64 {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	ms := time.Until(dl).Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return ms
}

// Query routes one query: fan out to the overlapping shards, merge ids
// (sorted, de-duplicated — a candidate whose δ-ball straddles a tile cut may
// come back from two shards), aggregate stats, and report the routing
// decision. With neither the request's allow_partial nor the router's
// AllowPartial set, any failed shard fails the whole query with ErrPartial;
// otherwise the merged partial answer is returned with Routing.Partial set.
func (r *Router) Query(ctx context.Context, req server.QueryRequest) (server.QueryResponse, error) {
	r.queries.Add(1)
	var cacheKey string
	if r.cache != nil {
		if fp, err := r.planner.PlanFingerprint(req.Spec()); err == nil {
			cacheKey = cacheBaseKey(fp, req.Center, r.m.RoutingEpoch)
			if resp, ok := r.cache.get(cacheKey); ok {
				return resp, nil
			}
		}
	}
	targets, empty, err := r.Route(req)
	if err != nil {
		return server.QueryResponse{}, err
	}
	info := &server.RoutingInfo{
		RoutingEpoch: r.m.RoutingEpoch,
		Shards:       len(r.m.Shards),
		Fanout:       len(targets),
	}
	if empty || len(targets) == 0 {
		r.emptyRoutes.Add(1)
		return server.QueryResponse{IDs: []int64{}, Routing: info}, nil
	}
	r.fanoutTotal.Add(uint64(len(targets)))

	shardReq := req
	shardReq.AllowPartial = false
	shardReq.TimeoutMS = remainingMS(ctx)
	resps := make([]server.QueryResponse, len(targets))
	errs := r.multi.Scatter(ctx, targets, r.fanout, func(ctx context.Context, shard int, c *client.Client) error {
		resp, err := c.QueryRaw(ctx, shardReq)
		if err != nil {
			return err
		}
		for i, t := range targets {
			if t == shard {
				resps[i] = resp
			}
		}
		return nil
	})

	var failed []int
	var firstErr error
	for i, err := range errs {
		if err != nil {
			failed = append(failed, targets[i])
			if firstErr == nil {
				firstErr = err
			}
			r.shardErrors.Add(1)
		}
	}
	if len(failed) > 0 {
		sort.Ints(failed)
		if !req.AllowPartial && !r.allowPartial {
			return server.QueryResponse{}, fmt.Errorf("%w: shard(s) %v failed: %v", ErrPartial, failed, firstErr)
		}
		if len(failed) == len(targets) {
			// Nothing contributed — a partial answer needs at least one shard.
			return server.QueryResponse{}, fmt.Errorf("%w: all %d routed shards failed: %v", ErrPartial, len(failed), firstErr)
		}
		info.Partial = true
		info.FailedShards = failed
		r.partials.Add(1)
	}

	out := server.QueryResponse{IDs: []int64{}, Routing: info}
	for i, t := range targets {
		if errs[i] != nil {
			continue
		}
		resp := resps[i]
		out.IDs = append(out.IDs, resp.IDs...)
		out.Stats.Add(resp.Stats)
		if resp.Epoch > out.Epoch {
			out.Epoch = resp.Epoch
		}
		info.ShardEpochs = append(info.ShardEpochs, server.ShardEpoch{Shard: t, Epoch: resp.Epoch})
	}
	sort.Slice(info.ShardEpochs, func(i, j int) bool { return info.ShardEpochs[i].Shard < info.ShardEpochs[j].Shard })
	before := len(out.IDs)
	out.IDs = mergeIDs(out.IDs)
	r.dedupDropped.Add(uint64(before - len(out.IDs)))
	if r.cache != nil && cacheKey != "" && !info.Partial {
		r.cache.put(cacheKey, out)
	}
	return out, nil
}

// mergeIDs sorts ids ascending and drops duplicates in place, so a routed
// answer is byte-for-byte identical to the single-node answer.
func mergeIDs(ids []int64) []int64 {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			out = append(out, id)
		}
	}
	return out
}

// syncIDsLocked seeds the global allocator from the shards' live max ids the
// first time a mutation needs it. Called with idMu held.
func (r *Router) syncIDsLocked(ctx context.Context) error {
	if r.synced {
		return nil
	}
	all := make([]int, len(r.m.Shards))
	for i := range all {
		all[i] = i
	}
	maxIDs := make([]int64, len(all))
	errs := r.multi.Scatter(ctx, all, r.fanout, func(ctx context.Context, shard int, c *client.Client) error {
		h, err := c.Health(ctx)
		if err != nil {
			return err
		}
		maxIDs[shard] = h.MaxID
		return nil
	})
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("shard: syncing ids: shard %d: %w", all[i], err)
		}
	}
	for _, id := range maxIDs {
		if id > r.nextID {
			r.nextID = id
		}
	}
	r.synced = true
	return nil
}

// Insert routes one insert batch: every point is assigned a fresh global id
// and sent to the shard whose region contains it (boundary ties go to the
// lowest shard id), as one explicit-id sub-batch per shard. Returns the
// global ids (aligned with points) and the maximum epoch the sub-batches
// published. Inserts are fail-closed: if any shard fails, the error reports
// which — sub-batches already applied on other shards stay applied (their
// ids are burned), so a retry inserts the points again under fresh ids only
// on the shards that missed them... callers that need exactly-once should
// retry with the failing points only.
func (r *Router) Insert(ctx context.Context, points [][]float64) (ids []int64, epoch uint64, err error) {
	if len(points) == 0 {
		return nil, 0, errors.New("shard: empty insert batch")
	}
	homes := make([]int, len(points))
	for i, p := range points {
		if len(p) != r.m.Dim {
			return nil, 0, fmt.Errorf("shard: insert %d has dim %d, want %d", i, len(p), r.m.Dim)
		}
		home := r.m.Locate(p)
		if home < 0 {
			return nil, 0, fmt.Errorf("shard: no shard region contains point %d (%v)", i, p)
		}
		homes[i] = home
	}

	r.idMu.Lock()
	if err := r.syncIDsLocked(ctx); err != nil {
		r.idMu.Unlock()
		return nil, 0, err
	}
	ids = make([]int64, len(points))
	for i := range points {
		ids[i] = r.nextID
		r.nextID++
	}
	r.idMu.Unlock()

	// Group into per-shard sub-batches; allocation order keeps each group's
	// ids strictly increasing, as ApplyWithIDs requires.
	groups := make(map[int]*Part)
	var targets []int
	for i, p := range points {
		g := groups[homes[i]]
		if g == nil {
			g = &Part{}
			groups[homes[i]] = g
			targets = append(targets, homes[i])
		}
		g.Points = append(g.Points, p)
		g.IDs = append(g.IDs, ids[i])
	}
	sort.Ints(targets)

	epochs := make([]uint64, len(targets))
	errs := r.multi.Scatter(ctx, targets, r.fanout, func(ctx context.Context, shard int, c *client.Client) error {
		g := groups[shard]
		ep, err := c.InsertPointsWithIDs(ctx, g.Points, g.IDs)
		if err != nil {
			return err
		}
		for i, t := range targets {
			if t == shard {
				epochs[i] = ep
			}
		}
		return nil
	})
	var failMsgs []string
	for i, err := range errs {
		if err != nil {
			r.shardErrors.Add(1)
			failMsgs = append(failMsgs, fmt.Sprintf("shard %d: %v", targets[i], err))
			continue
		}
		if epochs[i] > epoch {
			epoch = epochs[i]
		}
		// Remember who owns the successfully applied ids so deletes route
		// point-to-point instead of broadcasting.
		r.idMu.Lock()
		for _, id := range groups[targets[i]].IDs {
			r.owner[id] = targets[i]
		}
		r.idMu.Unlock()
	}
	if r.cache != nil {
		r.cache.observeEpoch(epoch)
	}
	if len(failMsgs) > 0 {
		return ids, epoch, fmt.Errorf("shard: insert incomplete: %s", strings.Join(failMsgs, "; "))
	}
	r.inserts.Add(uint64(len(points)))
	return ids, epoch, nil
}

// Delete routes one delete. Routing precedence: the router's own allocation
// record (exactly one shard), then the map's initial id intervals (possibly
// several — they are a filter, not a partition), then a broadcast for ids
// this router never saw (e.g. allocated before a restart). Deletes are
// idempotent on every shard, so the merged result is the OR of the per-shard
// outcomes; any shard error fails the call (retry is safe).
func (r *Router) Delete(ctx context.Context, id int64) (deleted bool, epoch uint64, err error) {
	var targets []int
	r.idMu.Lock()
	if home, ok := r.owner[id]; ok {
		targets = []int{home}
	}
	r.idMu.Unlock()
	if targets == nil && id >= 0 && id < r.m.NextID {
		targets = r.m.DeleteCandidates(id)
	}
	if targets == nil {
		targets = make([]int, len(r.m.Shards))
		for i := range targets {
			targets[i] = i
		}
	}
	if len(targets) == 0 {
		return false, 0, nil
	}

	dels := make([]bool, len(targets))
	epochs := make([]uint64, len(targets))
	errs := r.multi.Scatter(ctx, targets, r.fanout, func(ctx context.Context, shard int, c *client.Client) error {
		d, ep, err := c.DeletePoint(ctx, id)
		if err != nil {
			return err
		}
		for i, t := range targets {
			if t == shard {
				dels[i], epochs[i] = d, ep
			}
		}
		return nil
	})
	for i, err := range errs {
		if err != nil {
			r.shardErrors.Add(1)
			return false, 0, fmt.Errorf("shard: delete %d on shard %d: %w", id, targets[i], err)
		}
		if dels[i] {
			deleted = true
		}
		if epochs[i] > epoch {
			epoch = epochs[i]
		}
	}
	if r.cache != nil {
		r.cache.observeEpoch(epoch)
	}
	if deleted {
		r.idMu.Lock()
		delete(r.owner, id)
		r.idMu.Unlock()
		r.deletes.Add(1)
	}
	return deleted, epoch, nil
}

// Counters is the router's own accounting, served under /statsz.
type Counters struct {
	Queries      uint64  `json:"queries"`
	FanoutTotal  uint64  `json:"fanout_total"`
	MeanFanout   float64 `json:"mean_fanout"`
	EmptyRoutes  uint64  `json:"empty_routes"`
	Partials     uint64  `json:"partials"`
	ShardErrors  uint64  `json:"shard_errors"`
	Inserts      uint64  `json:"inserts"`
	Deletes      uint64  `json:"deletes"`
	DedupDropped uint64  `json:"dedup_dropped"`
	// Answer-cache accounting; all zero when the cache is disabled.
	AnswerCacheHits    uint64 `json:"answer_cache_hits"`
	AnswerCacheMisses  uint64 `json:"answer_cache_misses"`
	AnswerCacheEntries int    `json:"answer_cache_entries"`
}

// CountersSnapshot returns the router's counters.
func (r *Router) CountersSnapshot() Counters {
	c := Counters{
		Queries:      r.queries.Load(),
		FanoutTotal:  r.fanoutTotal.Load(),
		EmptyRoutes:  r.emptyRoutes.Load(),
		Partials:     r.partials.Load(),
		ShardErrors:  r.shardErrors.Load(),
		Inserts:      r.inserts.Load(),
		Deletes:      r.deletes.Load(),
		DedupDropped: r.dedupDropped.Load(),
	}
	if routed := c.Queries - c.EmptyRoutes; routed > 0 {
		c.MeanFanout = float64(c.FanoutTotal) / float64(routed)
	}
	if r.cache != nil {
		c.AnswerCacheHits, c.AnswerCacheMisses, c.AnswerCacheEntries = r.cache.stats()
	}
	return c
}
