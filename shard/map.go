// Package shard implements spatial scatter-gather serving: a versioned shard
// map that partitions the point set into STR tiles (one prqserved shard per
// tile), a query router that fans a probabilistic range query out only to the
// shards whose routing region overlaps the compiled plan's Phase-1 search
// rectangle, and deterministic mutation routing over a global id space.
//
// The routing idea is the paper's filter-and-refine design lifted from the
// index level to the cluster level: the compile-once plan already yields a
// tight rectangle that every answer point must lie in, so the router prunes
// whole shards exactly the way the R*-tree prunes subtrees — before any
// probability work runs.
package shard

import (
	"encoding/json"
	"fmt"
	"math"

	"gaussrange/internal/rtree"
	"gaussrange/internal/vecmat"
)

// MapVersion identifies the shard-map format.
const MapVersion = 1

// Bound is one routing-region coordinate. It marshals ±Inf as the JSON
// strings "inf" / "-inf" (JSON numbers cannot express infinities), so shard
// maps round-trip through files and HTTP losslessly.
type Bound float64

// MarshalJSON implements json.Marshaler.
func (b Bound) MarshalJSON() ([]byte, error) {
	switch {
	case math.IsInf(float64(b), 1):
		return []byte(`"inf"`), nil
	case math.IsInf(float64(b), -1):
		return []byte(`"-inf"`), nil
	case math.IsNaN(float64(b)):
		return nil, fmt.Errorf("shard: NaN bound")
	}
	return json.Marshal(float64(b))
}

// UnmarshalJSON implements json.Unmarshaler.
func (b *Bound) UnmarshalJSON(data []byte) error {
	switch string(data) {
	case `"inf"`, `"+inf"`:
		*b = Bound(math.Inf(1))
		return nil
	case `"-inf"`:
		*b = Bound(math.Inf(-1))
		return nil
	}
	var f float64
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("shard: invalid bound %s", data)
	}
	*b = Bound(f)
	return nil
}

// Shard is one entry of the map: the routing region assigned to the shard,
// the (tight, finite) bounds of the points initially loaded into it, and the
// initial id interval for delete routing.
type Shard struct {
	// ID is the shard's index: both the routing tie-breaker (a point on a
	// region boundary belongs to the lowest containing ID) and the index into
	// the router's endpoint list.
	ID int `json:"id"`
	// RegionLo/RegionHi delimit the closed routing region. Regions jointly
	// cover all of space (outer edges are ±Inf) and overlap only on shared
	// cut hyperplanes, so Locate is total and deterministic.
	RegionLo []Bound `json:"region_lo"`
	RegionHi []Bound `json:"region_hi"`
	// BoundsLo/BoundsHi is the MBR of the initially loaded points —
	// informational (the region, not the MBR, is what routing uses, because
	// later inserts may land anywhere in the region).
	BoundsLo []float64 `json:"bounds_lo,omitempty"`
	BoundsHi []float64 `json:"bounds_hi,omitempty"`
	// Points is the initial point count.
	Points int `json:"points"`
	// IDMin/IDMax delimit the shard's initial ids (inclusive; both -1 when
	// empty). Initial id intervals may interleave across shards — they are a
	// delete-routing filter, not a partition.
	IDMin int64 `json:"id_min"`
	IDMax int64 `json:"id_max"`
}

// Map is the versioned routing state of one sharded deployment.
type Map struct {
	// Version is the map format version (MapVersion).
	Version int `json:"version"`
	// RoutingEpoch versions the partitioning itself: mutations are stamped
	// with it so a batch routed under one partitioning is never applied under
	// another (a future re-split bumps it).
	RoutingEpoch uint64 `json:"routing_epoch"`
	// Dim is the point dimensionality.
	Dim int `json:"dim"`
	// NextID is the exclusive upper bound of ids assigned at build time; the
	// router's global allocator starts at max(NextID, shards' live max).
	NextID int64 `json:"next_id"`
	// Shards lists the shards in id order.
	Shards []Shard `json:"shards"`
}

// Part is one shard's slice of the partitioned point set, ready for
// gaussrange.LoadWithIDs: Points[i] is the row stored under global id IDs[i].
type Part struct {
	Points [][]float64
	IDs    []int64
}

// Split partitions points into k spatial shards with rtree.PartitionSTR and
// returns the shard map plus each shard's load set. Global id i is the index
// of points[i], so a sharded deployment loaded from the parts answers with
// ids identical to an unsharded Load of points.
func Split(points [][]float64, k int) (*Map, []Part, error) {
	if len(points) == 0 {
		return nil, nil, fmt.Errorf("shard: no points to split")
	}
	dim := len(points[0])
	vecs := make([]vecmat.Vector, len(points))
	for i, p := range points {
		if len(p) != dim {
			return nil, nil, fmt.Errorf("shard: point %d has dim %d, want %d", i, len(p), dim)
		}
		vecs[i] = vecmat.Vector(p)
	}
	tiles, err := rtree.PartitionSTR(vecs, dim, k)
	if err != nil {
		return nil, nil, err
	}
	m := &Map{
		Version:      MapVersion,
		RoutingEpoch: 1,
		Dim:          dim,
		NextID:       int64(len(points)),
		Shards:       make([]Shard, len(tiles)),
	}
	parts := make([]Part, len(tiles))
	for si, tile := range tiles {
		sh := Shard{
			ID:       si,
			RegionLo: toBounds(tile.Region.Lo),
			RegionHi: toBounds(tile.Region.Hi),
			Points:   len(tile.Indices),
			IDMin:    -1,
			IDMax:    -1,
		}
		if len(tile.Indices) > 0 {
			sh.BoundsLo = append([]float64(nil), tile.Bounds.Lo...)
			sh.BoundsHi = append([]float64(nil), tile.Bounds.Hi...)
			sh.IDMin = int64(tile.Indices[0])
			sh.IDMax = int64(tile.Indices[len(tile.Indices)-1])
		}
		part := Part{
			Points: make([][]float64, len(tile.Indices)),
			IDs:    make([]int64, len(tile.Indices)),
		}
		for i, idx := range tile.Indices {
			part.Points[i] = points[idx]
			part.IDs[i] = int64(idx)
		}
		m.Shards[si] = sh
		parts[si] = part
	}
	return m, parts, nil
}

func toBounds(v vecmat.Vector) []Bound {
	out := make([]Bound, len(v))
	for i, x := range v {
		out[i] = Bound(x)
	}
	return out
}

// Validate checks structural invariants: version, dimensions, shard ids in
// order, and space coverage of the regions along each axis' projection.
func (m *Map) Validate() error {
	if m.Version != MapVersion {
		return fmt.Errorf("shard: map version %d, want %d", m.Version, MapVersion)
	}
	if m.Dim <= 0 {
		return fmt.Errorf("shard: invalid dimension %d", m.Dim)
	}
	if len(m.Shards) == 0 {
		return fmt.Errorf("shard: empty shard list")
	}
	for i, sh := range m.Shards {
		if sh.ID != i {
			return fmt.Errorf("shard: shard %d has id %d (ids must be 0..k-1 in order)", i, sh.ID)
		}
		if len(sh.RegionLo) != m.Dim || len(sh.RegionHi) != m.Dim {
			return fmt.Errorf("shard: shard %d region has dim %d/%d, want %d", i, len(sh.RegionLo), len(sh.RegionHi), m.Dim)
		}
		for d := 0; d < m.Dim; d++ {
			if float64(sh.RegionLo[d]) > float64(sh.RegionHi[d]) {
				return fmt.Errorf("shard: shard %d region inverted on axis %d", i, d)
			}
		}
		if (sh.IDMin < 0) != (sh.IDMax < 0) || sh.IDMin > sh.IDMax {
			return fmt.Errorf("shard: shard %d id range [%d, %d] invalid", i, sh.IDMin, sh.IDMax)
		}
	}
	return nil
}

// regionContains reports whether the shard's closed region contains p.
func (sh *Shard) regionContains(p []float64) bool {
	for d, x := range p {
		if x < float64(sh.RegionLo[d]) || x > float64(sh.RegionHi[d]) {
			return false
		}
	}
	return true
}

// regionIntersects reports whether the shard's closed region intersects the
// closed rectangle [lo, hi].
func (sh *Shard) regionIntersects(lo, hi []float64) bool {
	for d := range lo {
		if hi[d] < float64(sh.RegionLo[d]) || lo[d] > float64(sh.RegionHi[d]) {
			return false
		}
	}
	return true
}

// Locate returns the shard owning point p: the lowest shard id whose closed
// region contains it. Regions cover all of space, so Locate is total for
// points of the right dimensionality (-1 only on a malformed map or a
// dimension mismatch).
func (m *Map) Locate(p []float64) int {
	if len(p) != m.Dim {
		return -1
	}
	for i := range m.Shards {
		if m.Shards[i].regionContains(p) {
			return i
		}
	}
	return -1
}

// Overlapping returns the ids of shards whose region intersects the closed
// rectangle [lo, hi] — the fan-out set for a plan whose Phase-1 search
// rectangle that is. Boundary touches count (a candidate's δ-ball may
// straddle the cut; the router de-duplicates).
func (m *Map) Overlapping(lo, hi []float64) []int {
	var out []int
	for i := range m.Shards {
		if m.Shards[i].regionIntersects(lo, hi) {
			out = append(out, i)
		}
	}
	return out
}

// DeleteCandidates returns the shards that may hold id, per the initial id
// intervals. An empty result means the id was not part of the initial load —
// it was allocated by a router after the split, and the caller must consult
// its own allocation record or broadcast.
func (m *Map) DeleteCandidates(id int64) []int {
	var out []int
	for i := range m.Shards {
		sh := &m.Shards[i]
		if sh.IDMin >= 0 && id >= sh.IDMin && id <= sh.IDMax {
			out = append(out, i)
		}
	}
	return out
}

// Encode serializes the map as indented JSON.
func (m *Map) Encode() ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(m, "", "  ")
}

// DecodeMap parses and validates a serialized map.
func DecodeMap(data []byte) (*Map, error) {
	var m Map
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("shard: decoding map: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}
