package shard

import (
	"context"
	"math/rand"
	"testing"

	"gaussrange/server"
)

// cachedRouter rebuilds a cluster's router with the answer cache enabled.
func cachedRouter(t *testing.T, c *cluster, size int) *Router {
	t.Helper()
	r, err := NewRouter(Config{
		Map:             c.router.m,
		Endpoints:       c.router.Endpoints(),
		AnswerCacheSize: size,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestAnswerCacheHitsAndIdentity: a repeated query is served from the cache
// (no extra shard round trips) and the cached answer is identical to the
// fresh one; a different center or shape misses.
func TestAnswerCacheHitsAndIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	c := newCluster(t, clusterPoints(rng, 1200), 3)
	r := cachedRouter(t, c, 8)
	ctx := context.Background()

	req := server.RequestFromSpec(testSpec([]float64{200, 200}))
	fresh, err := r.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	before := r.CountersSnapshot()
	if before.AnswerCacheHits != 0 || before.AnswerCacheMisses != 1 || before.AnswerCacheEntries != 1 {
		t.Fatalf("after first query: hits=%d misses=%d entries=%d, want 0/1/1",
			before.AnswerCacheHits, before.AnswerCacheMisses, before.AnswerCacheEntries)
	}

	cached, err := r.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	after := r.CountersSnapshot()
	if after.AnswerCacheHits != 1 {
		t.Errorf("repeat query: hits = %d, want 1", after.AnswerCacheHits)
	}
	if after.FanoutTotal != before.FanoutTotal {
		t.Errorf("cache hit still fanned out: %d → %d shard requests", before.FanoutTotal, after.FanoutTotal)
	}
	if len(cached.IDs) != len(fresh.IDs) {
		t.Fatalf("cached answer has %d ids, fresh %d", len(cached.IDs), len(fresh.IDs))
	}
	for i := range fresh.IDs {
		if cached.IDs[i] != fresh.IDs[i] {
			t.Fatal("cached IDs differ from fresh answer")
		}
	}

	// Different center → different key.
	if _, err := r.Query(ctx, server.RequestFromSpec(testSpec([]float64{120, 310}))); err != nil {
		t.Fatal(err)
	}
	if s := r.CountersSnapshot(); s.AnswerCacheMisses != 2 {
		t.Errorf("distinct center: misses = %d, want 2", s.AnswerCacheMisses)
	}
}

// TestAnswerCacheInvalidatedByMutation: a routed insert advances the observed
// epoch frontier and retires every cached answer, so the next query re-fans
// out and sees the new point.
func TestAnswerCacheInvalidatedByMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	c := newCluster(t, clusterPoints(rng, 1200), 3)
	r := cachedRouter(t, c, 8)
	ctx := context.Background()

	center := []float64{200, 200}
	req := server.RequestFromSpec(testSpec(center))
	if _, err := r.Query(ctx, req); err != nil {
		t.Fatal(err)
	}
	if s := r.CountersSnapshot(); s.AnswerCacheEntries != 1 {
		t.Fatalf("entries = %d, want 1", s.AnswerCacheEntries)
	}

	// Insert a point at the query center — it must appear in the next answer.
	ids, _, err := r.Insert(ctx, [][]float64{center})
	if err != nil {
		t.Fatal(err)
	}
	if s := r.CountersSnapshot(); s.AnswerCacheEntries != 0 {
		t.Errorf("entries after insert = %d, want 0 (cache invalidated)", s.AnswerCacheEntries)
	}
	resp, err := r.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range resp.IDs {
		if id == ids[0] {
			found = true
		}
	}
	if !found {
		t.Error("post-insert query missed the inserted point — cache served a stale answer")
	}
}

// TestAnswerCacheEviction: the LRU stays within its bound.
func TestAnswerCacheEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	c := newCluster(t, clusterPoints(rng, 800), 2)
	r := cachedRouter(t, c, 4)
	ctx := context.Background()

	for i := 0; i < 10; i++ {
		req := server.RequestFromSpec(testSpec([]float64{40 * float64(i+1), 200}))
		if _, err := r.Query(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	if s := r.CountersSnapshot(); s.AnswerCacheEntries > 4 {
		t.Errorf("entries = %d, want ≤ 4", s.AnswerCacheEntries)
	}

	// The most recent query must still be resident.
	before := r.CountersSnapshot().AnswerCacheHits
	if _, err := r.Query(ctx, server.RequestFromSpec(testSpec([]float64{400, 200}))); err != nil {
		t.Fatal(err)
	}
	if r.CountersSnapshot().AnswerCacheHits != before+1 {
		t.Error("most recently cached answer was evicted")
	}
}
