package shard

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"gaussrange"
	"gaussrange/server"
)

// The sharded-correctness property: for random (Σ, δ, θ, seed) queries and
// every shard count K ∈ {1, 2, 4, 8}, the routed answer is id-identical to
// the unsharded DB built from the same points with the same options — for
// every Phase-3 kernel, on datasets with tile-boundary ties, and across
// interleaved insert/delete batches.
//
// KernelPerCandidate runs the exact evaluator; the shared-cloud kernels run
// with a fixed (samples, seed) so the per-candidate decision is a pure
// function of the candidate's coordinates, independent of which shard
// evaluates it or in what order.

// boundaryPoints builds a lattice whose coordinates repeat across many
// points (so STR cut hyperplanes land on shared values and exercise the
// lowest-shard-id tie rule) plus random fill.
func boundaryPoints(r *rand.Rand, lattice, fill int) [][]float64 {
	var pts [][]float64
	for i := 0; i < lattice; i++ {
		for j := 0; j < lattice; j++ {
			pts = append(pts, []float64{float64(i) * 20, float64(j) * 20})
		}
	}
	span := float64(lattice) * 20
	for i := 0; i < fill; i++ {
		pts = append(pts, []float64{r.Float64() * span, r.Float64() * span})
	}
	return pts
}

// randomSpec draws a random SPD covariance and thresholds.
func randomSpec(r *rand.Rand, span float64) gaussrange.QuerySpec {
	a, b, c, d := r.NormFloat64(), r.NormFloat64(), r.NormFloat64(), r.NormFloat64()
	scale := 5 + r.Float64()*20
	// Σ = A·Aᵀ·scale + εI is symmetric positive definite by construction.
	cov := [][]float64{
		{(a*a + b*b) * scale * 0.2, (a*c + b*d) * scale * 0.2},
		{(a*c + b*d) * scale * 0.2, (c*c + d*d) * scale * 0.2},
	}
	cov[0][0] += 1
	cov[1][1] += 1
	return gaussrange.QuerySpec{
		Center: []float64{r.Float64() * span, r.Float64() * span},
		Cov:    cov,
		Delta:  5 + r.Float64()*25,
		Theta:  0.01 + r.Float64()*0.3,
	}
}

func assertSameAnswer(t *testing.T, tag string, ref *gaussrange.DB, router *Router, spec gaussrange.QuerySpec) int {
	t.Helper()
	want, err := ref.Query(spec)
	if err != nil {
		t.Fatalf("%s: unsharded query: %v", tag, err)
	}
	got, err := router.Query(context.Background(), server.RequestFromSpec(spec))
	if err != nil {
		t.Fatalf("%s: routed query: %v", tag, err)
	}
	wantIDs := want.IDs
	if wantIDs == nil {
		wantIDs = []int64{}
	}
	if !reflect.DeepEqual(got.IDs, wantIDs) {
		t.Fatalf("%s: routed answer diverged\n  routed:    %v\n  unsharded: %v", tag, got.IDs, wantIDs)
	}
	return len(wantIDs)
}

func TestPropertyShardedMatchesUnsharded(t *testing.T) {
	kernels := []struct {
		name string
		opts []gaussrange.Option
	}{
		{"per-candidate-exact", nil},
		{"shared-flat", []gaussrange.Option{gaussrange.WithPhase3Kernel(gaussrange.KernelSharedFlat), gaussrange.WithMonteCarlo(3000), gaussrange.WithSeed(7)}},
		{"shared-grid", []gaussrange.Option{gaussrange.WithPhase3Kernel(gaussrange.KernelSharedGrid), gaussrange.WithMonteCarlo(3000), gaussrange.WithSeed(7)}},
		{"shared-early", []gaussrange.Option{gaussrange.WithPhase3Kernel(gaussrange.KernelSharedEarly), gaussrange.WithMonteCarlo(3000), gaussrange.WithSeed(7)}},
		{"tiered", []gaussrange.Option{gaussrange.WithPhase3Kernel(gaussrange.KernelTiered), gaussrange.WithMonteCarlo(3000), gaussrange.WithSeed(7)}},
	}
	for _, kn := range kernels {
		kn := kn
		t.Run(kn.name, func(t *testing.T) {
			for _, k := range []int{1, 2, 4, 8} {
				k := k
				t.Run(fmt.Sprintf("K=%d", k), func(t *testing.T) {
					r := rand.New(rand.NewSource(int64(1000*k) + int64(len(kn.name))))
					pts := boundaryPoints(r, 12, 60)
					c := newCluster(t, pts, k, kn.opts...)
					span := 12.0 * 20

					matched := 0
					for qi := 0; qi < 5; qi++ {
						spec := randomSpec(r, span)
						matched += assertSameAnswer(t, fmt.Sprintf("pre-mutation q%d", qi), c.ref, c.router, spec)
					}
					if matched == 0 {
						t.Fatal("all pre-mutation queries empty — property vacuous")
					}

					// Interleaved insert/delete batches through the router,
					// mirrored onto the unsharded reference with the router's
					// global ids.
					ctx := context.Background()
					var live []int64
					for round := 0; round < 3; round++ {
						batch := make([][]float64, 8)
						for i := range batch {
							// Half on lattice coordinates (boundary ties),
							// half random.
							if i%2 == 0 {
								batch[i] = []float64{float64(r.Intn(12)) * 20, float64(r.Intn(12)) * 20}
							} else {
								batch[i] = []float64{r.Float64() * span, r.Float64() * span}
							}
						}
						ids, _, err := c.router.Insert(ctx, batch)
						if err != nil {
							t.Fatalf("round %d insert: %v", round, err)
						}
						if _, _, err := c.ref.ApplyWithIDs(batch, ids, nil); err != nil {
							t.Fatalf("round %d mirror insert: %v", round, err)
						}
						live = append(live, ids...)

						// Delete a mix of initial-load and router-inserted ids.
						dels := []int64{int64(r.Intn(len(pts))), live[r.Intn(len(live))]}
						for _, id := range dels {
							if _, _, err := c.router.Delete(ctx, id); err != nil {
								t.Fatalf("round %d delete %d: %v", round, id, err)
							}
							if _, _, err := c.ref.ApplyWithIDs(nil, nil, []int64{id}); err != nil {
								t.Fatalf("round %d mirror delete %d: %v", round, id, err)
							}
						}

						for qi := 0; qi < 3; qi++ {
							spec := randomSpec(r, span)
							assertSameAnswer(t, fmt.Sprintf("round %d q%d", round, qi), c.ref, c.router, spec)
						}
					}
				})
			}
		})
	}
}
