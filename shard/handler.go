package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"gaussrange/client"
	"gaussrange/server"
)

// HandlerConfig configures the router's HTTP face.
type HandlerConfig struct {
	// Router is the configured query router. Required.
	Router *Router
	// DefaultTimeout bounds a routed query when the request carries no
	// timeout_ms. 0 means unbounded.
	DefaultTimeout time.Duration
	// MaxBatchSize caps /v1/query/batch (default 1024).
	MaxBatchSize int
}

// Handler serves a Router over HTTP with the same wire protocol as a plain
// prqserved shard, so existing clients and tools work unchanged — query
// responses additionally carry a routing report, /v1/shardmap exposes the
// map, and /statsz aggregates the shards' totals under the router's own
// counters.
type Handler struct {
	r       *Router
	cfg     HandlerConfig
	started time.Time
}

// NewHandler validates cfg and returns the router's HTTP face.
func NewHandler(cfg HandlerConfig) (*Handler, error) {
	if cfg.Router == nil {
		return nil, errors.New("shard: HandlerConfig.Router is required")
	}
	if cfg.MaxBatchSize <= 0 {
		cfg.MaxBatchSize = 1024
	}
	return &Handler{r: cfg.Router, cfg: cfg, started: time.Now()}, nil
}

// Mux returns the HTTP handler serving all router endpoints.
func (h *Handler) Mux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", h.handleQuery)
	mux.HandleFunc("/v1/query/batch", h.handleBatch)
	mux.HandleFunc("/v1/points", h.handlePoints)
	mux.HandleFunc("/v1/points/", h.handlePointByID)
	mux.HandleFunc("/v1/shardmap", h.handleShardMap)
	mux.HandleFunc("/healthz", h.handleHealthz)
	mux.HandleFunc("/statsz", h.handleStatsz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, server.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, 16<<20)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	return nil
}

// queryContext derives one routed request's execution context.
func (h *Handler) queryContext(parent context.Context, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := h.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if d <= 0 {
		return context.WithCancel(parent)
	}
	return context.WithTimeout(parent, d)
}

// statusForRouteErr maps a routed-query error to HTTP: a lost shard is an
// upstream failure (502), an expired deadline 504, a cancelled client 499,
// anything else a spec problem (400).
func statusForRouteErr(err error) int {
	var ae *client.APIError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499
	case errors.As(err, &ae) && ae.Status == http.StatusBadRequest:
		return http.StatusBadRequest
	case errors.Is(err, ErrPartial):
		return http.StatusBadGateway
	default:
		return http.StatusBadRequest
	}
}

func (h *Handler) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req server.QueryRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := h.queryContext(r.Context(), req.TimeoutMS)
	defer cancel()
	resp, err := h.r.Query(ctx, req)
	if err != nil {
		writeError(w, statusForRouteErr(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *Handler) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req server.BatchRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Queries) > h.cfg.MaxBatchSize {
		writeError(w, http.StatusBadRequest, "batch of %d queries exceeds limit %d", len(req.Queries), h.cfg.MaxBatchSize)
		return
	}
	ctx, cancel := h.queryContext(r.Context(), req.TimeoutMS)
	defer cancel()
	resp := server.BatchResponse{Results: make([]server.QueryResponse, len(req.Queries))}
	for i, q := range req.Queries {
		q.TimeoutMS = 0 // the batch-wide deadline governs
		res, err := h.r.Query(ctx, q)
		if err != nil {
			writeError(w, statusForRouteErr(err), "query %d: %v", i, err)
			return
		}
		resp.Results[i] = res
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *Handler) handlePoints(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		h.handleInsert(w, r)
		return
	case http.MethodGet:
		// fall through to the lookup below
	default:
		writeError(w, http.StatusMethodNotAllowed, "use GET with ?id=…&id=…, or POST to insert")
		return
	}
	raw := r.URL.Query()["id"]
	if len(raw) == 0 {
		writeError(w, http.StatusBadRequest, "at least one ?id= parameter is required")
		return
	}
	resp := server.PointsResponse{Points: make([]server.Point, 0, len(raw))}
	for _, v := range raw {
		id, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid id %q: %v", v, err)
			return
		}
		pt, status, err := h.lookupPoint(r.Context(), id)
		if err != nil {
			writeError(w, status, "%v", err)
			return
		}
		resp.Points = append(resp.Points, pt)
	}
	writeJSON(w, http.StatusOK, resp)
}

// lookupPoint resolves one id across the shards that may hold it.
func (h *Handler) lookupPoint(ctx context.Context, id int64) (server.Point, int, error) {
	targets := h.r.pointCandidates(id)
	var (
		found    bool
		pt       server.Point
		hardErr  error
		hardCode int
	)
	for _, shard := range targets {
		coords, err := h.r.multi.At(shard).Point(ctx, id)
		if err == nil {
			pt, found = server.Point{ID: id, Coords: coords}, true
			break
		}
		var ae *client.APIError
		if errors.As(err, &ae) && ae.Status == http.StatusNotFound {
			continue // this shard simply doesn't hold the id
		}
		hardErr, hardCode = err, http.StatusBadGateway
	}
	if found {
		return pt, http.StatusOK, nil
	}
	if hardErr != nil {
		return server.Point{}, hardCode, hardErr
	}
	return server.Point{}, http.StatusNotFound, fmt.Errorf("core: point id %d is deleted", id)
}

// pointCandidates mirrors Delete's routing precedence for read lookups.
func (r *Router) pointCandidates(id int64) []int {
	r.idMu.Lock()
	home, ok := r.owner[id]
	r.idMu.Unlock()
	if ok {
		return []int{home}
	}
	if id >= 0 && id < r.m.NextID {
		if c := r.m.DeleteCandidates(id); len(c) > 0 {
			return c
		}
	}
	all := make([]int, len(r.m.Shards))
	for i := range all {
		all[i] = i
	}
	return all
}

func (h *Handler) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req server.InsertPointsRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Points) == 0 {
		writeError(w, http.StatusBadRequest, "points must not be empty")
		return
	}
	if len(req.IDs) > 0 {
		writeError(w, http.StatusBadRequest, "the router owns the id space; omit ids")
		return
	}
	ids, epoch, err := h.r.Insert(r.Context(), req.Points)
	if err != nil {
		writeError(w, http.StatusBadGateway, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, server.InsertPointsResponse{IDs: ids, Epoch: epoch})
}

func (h *Handler) handlePointByID(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodDelete {
		writeError(w, http.StatusMethodNotAllowed, "use DELETE /v1/points/{id}")
		return
	}
	id, err := strconv.ParseInt(strings.TrimPrefix(r.URL.Path, "/v1/points/"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid point id in path: %v", err)
		return
	}
	deleted, epoch, err := h.r.Delete(r.Context(), id)
	if err != nil {
		writeError(w, http.StatusBadGateway, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, server.DeletePointResponse{ID: id, Deleted: deleted, Epoch: epoch})
}

func (h *Handler) handleShardMap(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.r.Map())
}

// handleHealthz aggregates the shards' health: points and epoch sum/max over
// every reachable shard; status degrades to "degraded" when any shard is
// unreachable.
func (h *Handler) handleHealthz(w http.ResponseWriter, r *http.Request) {
	agg, _, ok := h.r.aggregateHealth(r.Context())
	if !ok {
		agg.Status = "degraded"
	}
	writeJSON(w, http.StatusOK, agg)
}

// aggregateHealth polls every shard's /healthz.
func (r *Router) aggregateHealth(ctx context.Context) (server.Health, []server.Health, bool) {
	all := make([]int, len(r.m.Shards))
	for i := range all {
		all[i] = i
	}
	per := make([]server.Health, len(all))
	errs := r.multi.Scatter(ctx, all, r.fanout, func(ctx context.Context, shard int, c *client.Client) error {
		h, err := c.Health(ctx)
		if err != nil {
			return err
		}
		per[shard] = h
		return nil
	})
	agg := server.Health{Status: "ok", Dim: r.m.Dim}
	ok := true
	for i, err := range errs {
		if err != nil {
			ok = false
			per[all[i]].Status = "unreachable"
			continue
		}
		agg.Points += per[all[i]].Points
		if per[all[i]].Epoch > agg.Epoch {
			agg.Epoch = per[all[i]].Epoch
		}
		if per[all[i]].MaxID > agg.MaxID {
			agg.MaxID = per[all[i]].MaxID
		}
	}
	return agg, per, ok
}

// RouterStats is the router's /statsz document: its own routing counters,
// the shard map summary, per-shard health, and the shards' query totals
// summed into one cluster-wide view.
type RouterStats struct {
	UptimeSeconds float64            `json:"uptime_seconds"`
	RoutingEpoch  uint64             `json:"routing_epoch"`
	Shards        int                `json:"shards"`
	Router        Counters           `json:"router"`
	Health        server.Health      `json:"health"`
	PerShard      []server.Health    `json:"per_shard"`
	Queries       server.QueryTotals `json:"queries"`
}

func (h *Handler) handleStatsz(w http.ResponseWriter, r *http.Request) {
	agg, per, ok := h.r.aggregateHealth(r.Context())
	if !ok {
		agg.Status = "degraded"
	}
	stats := RouterStats{
		UptimeSeconds: time.Since(h.started).Seconds(),
		RoutingEpoch:  h.r.m.RoutingEpoch,
		Shards:        len(h.r.m.Shards),
		Router:        h.r.CountersSnapshot(),
		Health:        agg,
		PerShard:      per,
	}
	all := make([]int, len(h.r.m.Shards))
	for i := range all {
		all[i] = i
	}
	totals := make([]server.QueryTotals, len(all))
	errs := h.r.multi.Scatter(r.Context(), all, h.r.fanout, func(ctx context.Context, shard int, c *client.Client) error {
		s, err := c.Stats(ctx)
		if err != nil {
			return err
		}
		totals[shard] = s.Queries
		return nil
	})
	for i, err := range errs {
		if err == nil {
			stats.Queries.Add(totals[all[i]])
		}
	}
	writeJSON(w, http.StatusOK, stats)
}
