package shard

import (
	"math/rand"
	"reflect"
	"testing"
)

func testPoints(r *rand.Rand, n int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{r.Float64() * 1000, r.Float64() * 1000}
	}
	return pts
}

func TestSplitInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	pts := testPoints(r, 800)
	for _, k := range []int{1, 2, 4, 8} {
		m, parts, err := Split(pts, k)
		if err != nil {
			t.Fatalf("Split k=%d: %v", k, err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(m.Shards) != k || len(parts) != k {
			t.Fatalf("k=%d: %d shards, %d parts", k, len(m.Shards), len(parts))
		}
		if m.NextID != int64(len(pts)) {
			t.Fatalf("k=%d: NextID %d, want %d", k, m.NextID, len(pts))
		}
		seen := make(map[int64]bool)
		for si, part := range parts {
			if len(part.IDs) != m.Shards[si].Points {
				t.Fatalf("k=%d shard %d: %d ids vs Points=%d", k, si, len(part.IDs), m.Shards[si].Points)
			}
			for i, id := range part.IDs {
				if seen[id] {
					t.Fatalf("k=%d: id %d in two shards", k, id)
				}
				seen[id] = true
				if !reflect.DeepEqual(part.Points[i], pts[id]) {
					t.Fatalf("k=%d: id %d maps to wrong point", k, id)
				}
				if id < m.Shards[si].IDMin || id > m.Shards[si].IDMax {
					t.Fatalf("k=%d shard %d: id %d outside advertised range [%d, %d]",
						k, si, id, m.Shards[si].IDMin, m.Shards[si].IDMax)
				}
				// The owning shard must be locatable from the coordinates
				// alone — mutation routing depends on it. Ties go to the
				// lowest shard id, which may differ from si only if a lower
				// region also contains the point.
				if home := m.Locate(part.Points[i]); home > si {
					t.Fatalf("k=%d: point %d located to shard %d but stored on %d", k, id, home, si)
				} else if home < si && !m.Shards[home].regionContains(part.Points[i]) {
					t.Fatalf("k=%d: Locate returned non-containing shard", k)
				}
			}
		}
		if len(seen) != len(pts) {
			t.Fatalf("k=%d: %d of %d ids assigned", k, len(seen), len(pts))
		}
	}
}

func TestMapJSONRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	m, _, err := Split(testPoints(r, 200), 4)
	if err != nil {
		t.Fatal(err)
	}
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeMap(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, back) {
		t.Fatalf("map round-trip diverged:\n  in:  %+v\n  out: %+v", m, back)
	}
	// The outer regions carry ±Inf — must survive the trip (DeepEqual above
	// proves it, but make the intent explicit).
	if got := float64(back.Shards[0].RegionLo[0]); got == -1e308 || got > -1e300 {
		t.Fatalf("outer lo bound not -Inf: %v", got)
	}
}

func TestLocateIsTotalAndDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := testPoints(r, 300)
	m, _, err := Split(pts, 6)
	if err != nil {
		t.Fatal(err)
	}
	probes := [][]float64{{-1e7, 5}, {1e7, -1e7}, {500, 500}, {0, 0}, {999, 1}}
	for _, p := range probes {
		home := m.Locate(p)
		if home < 0 {
			t.Fatalf("Locate(%v) = -1", p)
		}
		if again := m.Locate(p); again != home {
			t.Fatalf("Locate(%v) nondeterministic: %d vs %d", p, home, again)
		}
		// Lowest-id tie rule: no lower shard's region may contain p.
		for i := 0; i < home; i++ {
			if m.Shards[i].regionContains(p) {
				t.Fatalf("Locate(%v) = %d but shard %d also contains it", p, home, i)
			}
		}
	}
	if m.Locate([]float64{1, 2, 3}) != -1 {
		t.Fatal("dimension mismatch not rejected")
	}
}

func TestOverlappingPrunes(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	m, _, err := Split(testPoints(r, 400), 4)
	if err != nil {
		t.Fatal(err)
	}
	// The whole space overlaps everything.
	if got := m.Overlapping([]float64{-1e9, -1e9}, []float64{1e9, 1e9}); len(got) != 4 {
		t.Fatalf("world query overlaps %d shards, want 4", got)
	}
	// A tiny box strictly inside one shard's finite interior overlaps fewer
	// than all shards.
	var inner []float64
	for _, sh := range m.Shards {
		if sh.Points > 0 {
			inner = []float64{(sh.BoundsLo[0] + sh.BoundsHi[0]) / 2, (sh.BoundsLo[1] + sh.BoundsHi[1]) / 2}
			break
		}
	}
	got := m.Overlapping([]float64{inner[0] - 1e-6, inner[1] - 1e-6}, []float64{inner[0] + 1e-6, inner[1] + 1e-6})
	if len(got) == 0 || len(got) == 4 {
		t.Fatalf("tiny query overlaps %v shards", got)
	}
}

func TestDeleteCandidates(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	pts := testPoints(r, 500)
	m, parts, err := Split(pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	for si, part := range parts {
		for _, id := range part.IDs {
			cands := m.DeleteCandidates(id)
			found := false
			for _, c := range cands {
				if c == si {
					found = true
				}
			}
			if !found {
				t.Fatalf("id %d stored on shard %d not among candidates %v", id, si, cands)
			}
		}
	}
	if got := m.DeleteCandidates(int64(len(pts)) + 100); len(got) != 0 {
		t.Fatalf("post-load id has initial candidates %v", got)
	}
}

func TestDecodeMapRejectsInvalid(t *testing.T) {
	if _, err := DecodeMap([]byte(`{"version": 99}`)); err == nil {
		t.Error("bad version accepted")
	}
	if _, err := DecodeMap([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}
